//! The readiness layer of the event-driven server: a generation-tagged
//! connection slab plus a portable, dependency-free poll shim over
//! nonblocking sockets.
//!
//! A real `epoll_wait`/`kqueue` is out of reach here — the workspace is
//! `forbid(unsafe_code)` and vendors no `libc` — so readiness is probed
//! **level-triggered**: every socket is switched to nonblocking mode and
//! the event loop *attempts* the I/O it is interested in. A `read` that
//! returns `WouldBlock` *is* the "not ready" event; one that returns
//! bytes *is* the "readable" event; a short or refused `write` *is* the
//! backpressure signal. [`read_step`] and [`write_step`] normalize those
//! outcomes (folding `Interrupted` retries and orderly-shutdown `Ok(0)`
//! into typed variants) so the event loop never blocks on a socket.
//!
//! The scan is O(live connections) per tick, which the C10K target
//! tolerates comfortably — the per-connection work is one nonblocking
//! syscall, and an idle server backs its tick interval off (see
//! `server::event_loop`). The interfaces are deliberately shaped like an
//! epoll registry (slab slots double as interest tokens), so a real
//! readiness syscall could replace the scan without touching the event
//! loop's state machine.

use std::io::{self, Read, Write};

/// Address of one connection in the [`Slab`], tagged with the slot's
/// generation.
///
/// The generation makes stale addresses harmless: when a connection
/// dies, its slot is recycled with a bumped generation, so a completion
/// message (or any queued work) still carrying the old token resolves to
/// `None` instead of corrupting the slot's new tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token {
    slot: u32,
    generation: u32,
}

impl Token {
    /// The slab slot this token addresses.
    pub fn slot(self) -> usize {
        self.slot as usize
    }
}

/// A vector-backed slab with generation-tagged slots: O(1) insert,
/// lookup and remove, slots recycled LIFO, every recycle bumping the
/// slot generation so outstanding [`Token`]s to the previous tenant go
/// stale instead of aliasing.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<(u32, Option<T>)>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots ever allocated (live + recyclable); the bound for
    /// [`Slab::token_at`] scans.
    pub fn slots(&self) -> usize {
        self.entries.len()
    }

    /// Inserts a value, returning its generation-tagged token.
    pub fn insert(&mut self, value: T) -> Token {
        self.live += 1;
        match self.free.pop() {
            Some(slot) => {
                let entry = &mut self.entries[slot as usize];
                entry.1 = Some(value);
                Token {
                    slot,
                    generation: entry.0,
                }
            }
            None => {
                let slot = u32::try_from(self.entries.len()).expect("slab capacity");
                self.entries.push((0, Some(value)));
                Token {
                    slot,
                    generation: 0,
                }
            }
        }
    }

    /// The live entry addressed by `token`, unless the token is stale.
    pub fn get(&self, token: Token) -> Option<&T> {
        match self.entries.get(token.slot()) {
            Some((generation, Some(value))) if *generation == token.generation => Some(value),
            _ => None,
        }
    }

    /// Mutable access to the live entry addressed by `token`.
    pub fn get_mut(&mut self, token: Token) -> Option<&mut T> {
        match self.entries.get_mut(token.slot()) {
            Some((generation, value @ Some(_))) if *generation == token.generation => {
                value.as_mut()
            }
            _ => None,
        }
    }

    /// Removes and returns the entry addressed by `token`, bumping the
    /// slot generation so every outstanding copy of the token goes
    /// stale. Stale tokens remove nothing.
    pub fn remove(&mut self, token: Token) -> Option<T> {
        let entry = self.entries.get_mut(token.slot())?;
        if entry.0 != token.generation || entry.1.is_none() {
            return None;
        }
        let value = entry.1.take();
        entry.0 = entry.0.wrapping_add(1);
        self.free.push(token.slot);
        self.live -= 1;
        value
    }

    /// The current token of slot `slot`, if it holds a live entry —
    /// allocation-free iteration for the event loop's scan:
    /// `for slot in 0..slab.slots() { let Some(token) = slab.token_at(slot) ... }`.
    pub fn token_at(&self, slot: usize) -> Option<Token> {
        match self.entries.get(slot) {
            Some((generation, Some(_))) => Some(Token {
                slot: u32::try_from(slot).expect("slab capacity"),
                generation: *generation,
            }),
            _ => None,
        }
    }
}

/// Outcome of one nonblocking read attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadStep {
    /// `n` bytes landed in the buffer.
    Data(usize),
    /// Orderly shutdown: the peer closed its write side.
    Closed,
    /// Nothing buffered; try again on a later tick.
    NotReady,
}

/// One nonblocking read, with `Interrupted` retried and `WouldBlock`
/// folded into [`ReadStep::NotReady`]. Transport errors propagate — the
/// caller drops the connection.
pub fn read_step(stream: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadStep> {
    loop {
        match stream.read(buf) {
            Ok(0) => return Ok(ReadStep::Closed),
            Ok(n) => return Ok(ReadStep::Data(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadStep::NotReady),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Outcome of one nonblocking write attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteStep {
    /// `n` bytes were accepted by the socket buffer.
    Wrote(usize),
    /// The socket buffer is full (client not reading); try again on a
    /// later tick.
    NotReady,
}

/// One nonblocking write, with `Interrupted` retried and `WouldBlock`
/// folded into [`WriteStep::NotReady`]. A `WriteZero`-shaped `Ok(0)` on
/// a nonempty buffer and transport errors propagate as errors — the
/// caller drops the connection.
pub fn write_step(stream: &mut impl Write, buf: &[u8]) -> io::Result<WriteStep> {
    loop {
        match stream.write(buf) {
            Ok(0) if !buf.is_empty() => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket refused bytes",
                ))
            }
            Ok(n) => return Ok(WriteStep::Wrote(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(WriteStep::NotReady),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_insert_get_remove_roundtrip() {
        let mut slab: Slab<&str> = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(a), None);
    }

    #[test]
    fn stale_token_cannot_touch_a_recycled_slot() {
        let mut slab: Slab<u32> = Slab::new();
        let first = slab.insert(1);
        assert_eq!(slab.remove(first), Some(1));
        // The slot is recycled with a bumped generation.
        let second = slab.insert(2);
        assert_eq!(second.slot(), first.slot());
        assert_ne!(second, first);
        // The stale token resolves to nothing and removes nothing.
        assert_eq!(slab.get(first), None);
        assert_eq!(slab.get_mut(first), None);
        assert_eq!(slab.remove(first), None);
        assert_eq!(slab.get(second), Some(&2));
    }

    #[test]
    fn token_at_walks_only_live_slots() {
        let mut slab: Slab<u32> = Slab::new();
        let tokens: Vec<Token> = (0..4).map(|i| slab.insert(i)).collect();
        slab.remove(tokens[1]);
        let live: Vec<u32> = (0..slab.slots())
            .filter_map(|slot| slab.token_at(slot))
            .map(|t| *slab.get(t).unwrap())
            .collect();
        assert_eq!(live, vec![0, 2, 3]);
    }

    #[test]
    fn read_step_classifies_eof_and_data() {
        let mut cursor = std::io::Cursor::new(b"xy".to_vec());
        let mut buf = [0u8; 8];
        assert_eq!(read_step(&mut cursor, &mut buf).unwrap(), ReadStep::Data(2));
        assert_eq!(read_step(&mut cursor, &mut buf).unwrap(), ReadStep::Closed);
    }
}
