//! A minimal, dependency-free HTTP/1.1 implementation on `std::net`:
//! just enough protocol for the benchmark service — an **incremental**
//! request parser with hard size limits, keep-alive and pipelining,
//! fixed-length responses, and chunked transfer encoding for streamed
//! batch results. Both sides of the wire live here: the server feeds
//! socket bytes into a [`RequestParser`] and frames responses with the
//! `encode_*` helpers, the load-generator client uses [`write_request`]
//! and [`read_response`].
//!
//! The server side never blocks and never copies per-field: the parser
//! accumulates raw socket bytes, and a completed [`Request`] *takes*
//! that buffer, exposing method/path/headers/body as byte spans into it.
//! One allocation per request (the buffer the socket bytes already
//! landed in), zero intermediate `String`s.

use std::io::{self, BufRead, Read, Write};
use std::net::TcpStream;
use std::ops::Range;

/// Largest accepted request body. Anything bigger is answered with a
/// typed `413` and the connection is closed.
pub const MAX_BODY_BYTES: usize = 4 << 20;
/// Largest accepted header section.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Most headers accepted on one request.
const MAX_HEADERS: usize = 64;

/// One parsed HTTP request: an owned byte buffer (the exact bytes the
/// socket delivered) plus spans locating each field, so handing a
/// request to a worker thread moves one allocation and copies nothing.
#[derive(Debug, Clone)]
pub struct Request {
    bytes: Box<[u8]>,
    method: Range<usize>,
    path: Range<usize>,
    headers: Vec<(Range<usize>, Range<usize>)>,
    body: Range<usize>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    fn span(&self, range: &Range<usize>) -> &str {
        std::str::from_utf8(&self.bytes[range.clone()]).expect("spans validated at parse")
    }

    /// Method token, exactly as sent (`GET`, `POST`, ...).
    pub fn method(&self) -> &str {
        self.span(&self.method)
    }

    /// Request path with any query string stripped.
    pub fn path(&self) -> &str {
        self.span(&self.path)
    }

    /// Decoded body (empty when the request has none).
    pub fn body(&self) -> &str {
        self.span(&self.body)
    }

    /// Total bytes this request occupied on the wire (head + body) —
    /// what the `http_bytes_total{direction="in"}` counter accumulates.
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }

    /// Header `(name, value)` pairs in wire order, names lowercased.
    pub fn headers(&self) -> impl Iterator<Item = (&str, &str)> {
        self.headers
            .iter()
            .map(|(name, value)| (self.span(name), self.span(value)))
    }

    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers().find(|(n, _)| *n == name).map(|(_, v)| v)
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out (idle keep-alive connection).
    Timeout,
    /// The bytes on the wire are not a valid HTTP/1.x request — answer
    /// `400` and close.
    Malformed(String),
    /// The request body uses `transfer-encoding: chunked`, which the
    /// service does not accept — answer a typed `411 Length Required`
    /// and close. (Ignoring the header, as the pre-event-loop server
    /// did, left the chunked bytes on the wire to desync the next
    /// keep-alive request into a bogus 400.)
    LengthRequired,
    /// The declared body exceeds [`MAX_BODY_BYTES`] — answer `413` and
    /// close.
    BodyTooLarge(usize),
    /// Transport failure mid-request.
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> RequestError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => RequestError::Timeout,
            io::ErrorKind::UnexpectedEof => RequestError::Closed,
            io::ErrorKind::InvalidData => RequestError::Malformed("not valid UTF-8".into()),
            _ => RequestError::Io(e),
        }
    }
}

/// Fields of a parsed header section, awaiting its body.
#[derive(Debug)]
struct ParsedHead {
    head_len: usize,
    method: Range<usize>,
    path: Range<usize>,
    headers: Vec<(Range<usize>, Range<usize>)>,
    content_length: usize,
    keep_alive: bool,
}

/// The incremental request parser: feed it socket bytes as they arrive,
/// ask it for completed requests. One parser lives per connection and
/// carries pipelined bytes across requests, so back-to-back requests in
/// one TCP segment (or one request delivered a byte at a time) parse
/// identically.
///
/// # Examples
///
/// ```
/// use ceserve::http::RequestParser;
///
/// let mut parser = RequestParser::new();
/// // Bytes may arrive in arbitrary fragments…
/// parser.feed(b"GET /v1/stats HT");
/// assert!(parser.try_next().unwrap().is_none()); // …no request yet…
/// parser.feed(b"TP/1.1\r\n\r\n");
/// let request = parser.try_next().unwrap().expect("complete");
/// assert_eq!(request.method(), "GET");
/// assert_eq!(request.path(), "/v1/stats");
/// ```
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Resume offset for the head-terminator scan, so repeated
    /// `try_next` calls on a slowly-arriving head stay O(new bytes).
    scanned: usize,
    head: Option<ParsedHead>,
}

impl RequestParser {
    /// A parser with no buffered bytes.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends freshly-read socket bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether a request has *started* arriving but is not complete —
    /// the state that turns a read timeout into `408 Request Timeout`
    /// instead of a silent idle-connection close.
    pub fn mid_request(&self) -> bool {
        self.head.is_some() || self.buf.iter().any(|b| !matches!(b, b'\r' | b'\n'))
    }

    /// Bytes buffered but not yet consumed by a completed request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The raw buffered bytes themselves. Error paths that answer before
    /// a request completes (408 timeout, 400 parse failure) scan these
    /// for an `x-request-id` header so even those responses correlate.
    pub fn buffered_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Tries to complete one request from the buffered bytes.
    ///
    /// `Ok(None)` means "need more bytes". Errors are terminal for the
    /// connection (the caller answers the mapped status and closes);
    /// the parser makes no attempt to resynchronize after one.
    pub fn try_next(&mut self) -> Result<Option<Request>, RequestError> {
        if self.head.is_none() {
            // Tolerate blank lines before the request line (RFC 9112 §2.2).
            let blank = self
                .buf
                .iter()
                .take_while(|b| matches!(b, b'\r' | b'\n'))
                .count();
            if blank > 0 {
                self.buf.drain(..blank);
                self.scanned = 0;
            }
            if self.buf.is_empty() {
                return Ok(None);
            }
            let Some(head_len) = self.find_head_end() else {
                if self.buf.len() > MAX_HEADER_BYTES {
                    return Err(RequestError::Malformed("header section too large".into()));
                }
                return Ok(None);
            };
            if head_len > MAX_HEADER_BYTES {
                return Err(RequestError::Malformed("header section too large".into()));
            }
            self.head = Some(parse_head(&mut self.buf, head_len)?);
        }
        let head = self.head.as_ref().expect("head parsed above");
        let total = head.head_len + head.content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        let head = self.head.take().expect("head parsed above");
        let bytes: Vec<u8> = self.buf.drain(..total).collect();
        self.scanned = 0;
        if std::str::from_utf8(&bytes[head.head_len..]).is_err() {
            return Err(RequestError::Malformed("body is not valid UTF-8".into()));
        }
        Ok(Some(Request {
            bytes: bytes.into_boxed_slice(),
            method: head.method,
            path: head.path,
            headers: head.headers,
            body: head.head_len..total,
            keep_alive: head.keep_alive,
        }))
    }

    /// Finds the header/body boundary (`CRLFCRLF` or `LFLF`), returning
    /// the head length including the terminator.
    fn find_head_end(&mut self) -> Option<usize> {
        let buf = &self.buf;
        let mut i = self.scanned;
        while i + 1 < buf.len() {
            if buf[i] == b'\n' {
                if buf[i + 1] == b'\n' {
                    return Some(i + 2);
                }
                if buf[i + 1] == b'\r' && buf.get(i + 2) == Some(&b'\n') {
                    return Some(i + 3);
                }
            }
            i += 1;
        }
        // Re-examine the last two bytes once more arrive: a terminator
        // may straddle the fragment boundary.
        self.scanned = buf.len().saturating_sub(2);
        None
    }
}

/// Parses the head section in `buf[..head_len]` into field spans,
/// lowercasing header names in place (spans can't re-case).
fn parse_head(buf: &mut [u8], head_len: usize) -> Result<ParsedHead, RequestError> {
    if std::str::from_utf8(&buf[..head_len]).is_err() {
        return Err(RequestError::Malformed("head is not valid UTF-8".into()));
    }
    // Collect the line spans up front: the header loop below mutates
    // `buf` (lowercasing names in place), which can't overlap a live
    // iterator borrow.
    let line_spans: Vec<Range<usize>> = LineSpans {
        buf: &buf[..head_len],
        pos: 0,
    }
    .collect();
    let mut lines = line_spans.into_iter();
    let request_line = lines.next().expect("head has a request line");
    let tokens: Vec<Range<usize>> = token_spans(buf, request_line.clone()).collect();
    let mut tokens = tokens.into_iter();
    let (method, target, version) =
        match (tokens.next(), tokens.next(), tokens.next(), tokens.next()) {
            (Some(m), Some(t), Some(v), None) => (m, t, v),
            _ => {
                return Err(RequestError::Malformed(format!(
                    "bad request line {:?}",
                    String::from_utf8_lossy(&buf[request_line])
                )))
            }
        };
    if !buf[version.clone()].starts_with(b"HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported version {:?}",
            String::from_utf8_lossy(&buf[version])
        )));
    }
    let path = match buf[target.clone()].iter().position(|b| *b == b'?') {
        Some(q) => target.start..target.start + q,
        None => target,
    };

    let mut headers: Vec<(Range<usize>, Range<usize>)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::Malformed("too many headers".into()));
        }
        let colon = buf[line.clone()]
            .iter()
            .position(|b| *b == b':')
            .ok_or_else(|| {
                RequestError::Malformed(format!(
                    "bad header line {:?}",
                    String::from_utf8_lossy(&buf[line.clone()])
                ))
            })?;
        let name = trim_span(buf, line.start..line.start + colon);
        let value = trim_span(buf, line.start + colon + 1..line.end);
        buf[name.clone()].make_ascii_lowercase();
        headers.push((name, value));
    }

    // Bodies must be length-delimited. A `transfer-encoding: chunked`
    // body is answered with a typed 411 (silently ignoring it would
    // leave the chunk stream on the wire and desync the connection);
    // any other transfer coding is a hard 400.
    if let Some(te) = header_spans(buf, &headers, b"transfer-encoding").next() {
        let value = String::from_utf8_lossy(&buf[te]).to_ascii_lowercase();
        if value.split(',').any(|t| t.trim() == "chunked") {
            return Err(RequestError::LengthRequired);
        }
        return Err(RequestError::Malformed(format!(
            "unsupported transfer-encoding {value:?}"
        )));
    }

    // All content-length values (repeated headers and comma-separated
    // lists both) must agree — first-wins on a conflicting pair is the
    // classic request-smuggling shape, so disagreement is a hard 400.
    let mut content_length: Option<usize> = None;
    for value in header_spans(buf, &headers, b"content-length") {
        let value = std::str::from_utf8(&buf[value]).expect("head validated");
        for token in value.split(',') {
            let parsed: usize = token.trim().parse().map_err(|_| {
                RequestError::Malformed(format!("bad content-length {:?}", token.trim()))
            })?;
            match content_length {
                None => content_length = Some(parsed),
                Some(seen) if seen == parsed => {}
                Some(seen) => {
                    return Err(RequestError::Malformed(format!(
                        "conflicting content-length values {seen} and {parsed}"
                    )))
                }
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::BodyTooLarge(content_length));
    }

    let connection = header_spans(buf, &headers, b"connection")
        .next()
        .map(|v| String::from_utf8_lossy(&buf[v]).to_ascii_lowercase());
    let keep_alive = match connection {
        Some(c) if c.contains("close") => false,
        _ => &buf[version] != b"HTTP/1.0",
    };

    Ok(ParsedHead {
        head_len,
        method,
        path,
        headers,
        content_length,
        keep_alive,
    })
}

/// Value spans of every header named `name` (names already lowercased).
fn header_spans<'a>(
    buf: &'a [u8],
    headers: &'a [(Range<usize>, Range<usize>)],
    name: &'a [u8],
) -> impl Iterator<Item = Range<usize>> + 'a {
    headers
        .iter()
        .filter(move |(n, _)| &buf[n.clone()] == name)
        .map(|(_, v)| v.clone())
}

/// Iterator over line spans (excluding the CRLF/LF) of a head section.
struct LineSpans<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl Iterator for LineSpans<'_> {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let start = self.pos;
        let nl = self.buf[start..]
            .iter()
            .position(|b| *b == b'\n')
            .map_or(self.buf.len(), |i| start + i);
        self.pos = nl + 1;
        let end = if nl > start && self.buf[nl - 1] == b'\r' {
            nl - 1
        } else {
            nl
        };
        Some(start..end)
    }
}

/// Spans of the whitespace-separated tokens inside `range`.
fn token_spans(buf: &[u8], range: Range<usize>) -> impl Iterator<Item = Range<usize>> + '_ {
    let mut pos = range.start;
    let end = range.end;
    std::iter::from_fn(move || {
        while pos < end && buf[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if pos >= end {
            return None;
        }
        let start = pos;
        while pos < end && !buf[pos].is_ascii_whitespace() {
            pos += 1;
        }
        Some(start..pos)
    })
}

/// Shrinks a span to exclude leading/trailing ASCII whitespace.
fn trim_span(buf: &[u8], mut range: Range<usize>) -> Range<usize> {
    while range.start < range.end && buf[range.start].is_ascii_whitespace() {
        range.start += 1;
    }
    while range.end > range.start && buf[range.end - 1].is_ascii_whitespace() {
        range.end -= 1;
    }
    range
}

/// Human reason phrase for the status codes the service speaks.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Frames one fixed-length response as wire bytes.
pub fn encode_response(status: u16, content_type: &str, body: &str, keep_alive: bool) -> Vec<u8> {
    encode_response_with(status, content_type, body, keep_alive, &[])
}

/// [`encode_response`] with extra response headers (e.g. the echoed
/// `x-request-id`). Header names and values must already be wire-safe —
/// no CR/LF; the service only passes values it validated on ingress.
pub fn encode_response_with(
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
            reason(status),
            body.len(),
        )
        .as_bytes(),
    );
    for (name, value) in extra_headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body.as_bytes());
    out
}

/// Frames the head of a chunked-transfer response (the `/v1/batch`
/// stream).
pub fn encode_chunked_head(status: u16, content_type: &str, keep_alive: bool) -> Vec<u8> {
    encode_chunked_head_with(status, content_type, keep_alive, &[])
}

/// [`encode_chunked_head`] with extra response headers (e.g. the echoed
/// `x-request-id`). Same wire-safety contract as
/// [`encode_response_with`].
pub fn encode_chunked_head_with(
    status: u16,
    content_type: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\nconnection: {connection}\r\n",
        reason(status),
    )
    .into_bytes();
    for (name, value) in extra_headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out
}

/// Frames one chunk. Empty input frames to nothing — a zero-length
/// chunk would terminate the stream.
pub fn encode_chunk(data: &str) -> Vec<u8> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(data.len() + 16);
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data.as_bytes());
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminator of a chunk stream.
pub const CHUNK_STREAM_END: &[u8] = b"0\r\n\r\n";

/// One parsed HTTP response (client side).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Full body, chunked transfer already decoded.
    pub body: String,
}

impl Response {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Writes one client request. `body` implies `POST`-style framing with a
/// `content-length`.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<()> {
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: ceserve\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads one line (up to CRLF or LF), enforcing a byte budget.
///
/// The budget bounds the *read itself* (via `Read::take`), not just the
/// finished line, so a newline-free byte stream errors at the budget
/// mark instead of buffering without limit.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, RequestError> {
    let mut line = String::new();
    let n = (&mut *reader)
        .take(*budget as u64 + 1)
        .read_line(&mut line)
        .map_err(RequestError::from)?;
    if n == 0 {
        return Err(RequestError::Closed);
    }
    if n > *budget {
        return Err(RequestError::Malformed("header section too large".into()));
    }
    *budget -= n;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Maps a transport error hit *after* the status line was read: at that
/// point the response is partially consumed, so a close or reset means a
/// truncated response — distinct from [`RequestError::Closed`] on the
/// very first byte, which is the ordinary stale-keep-alive signal a
/// client may safely react to by reconnecting and re-sending.
fn truncated(e: RequestError) -> RequestError {
    match e {
        RequestError::Closed => RequestError::Malformed("response truncated mid-stream".into()),
        RequestError::Io(e) => {
            RequestError::Malformed(format!("response truncated mid-stream: {e}"))
        }
        other => other,
    }
}

/// Reads one full response, decoding chunked transfer encoding when the
/// server streamed it.
///
/// Errors are phase-typed for the caller's retry decision:
/// [`RequestError::Closed`] is returned **only** when the connection
/// ended cleanly before a single response byte arrived; any failure
/// after that surfaces as a truncation ([`RequestError::Malformed`]) or
/// [`RequestError::Timeout`], both of which mean the server may already
/// be executing the request.
pub fn read_response(reader: &mut impl BufRead) -> Result<Response, RequestError> {
    let mut budget = MAX_HEADER_BYTES;
    let status_line = read_line(reader, &mut budget)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| RequestError::Malformed(format!("bad status line {status_line:?}")))?;
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(reader, &mut budget).map_err(truncated)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.to_ascii_lowercase().contains("chunked"));
    let mut raw: Vec<u8> = Vec::new();
    if chunked {
        loop {
            let mut line_budget = MAX_HEADER_BYTES;
            let size_line = read_line(reader, &mut line_budget).map_err(truncated)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| RequestError::Malformed(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                // Trailer section: read through the final blank line.
                loop {
                    let mut trailer_budget = MAX_HEADER_BYTES;
                    let t = read_line(reader, &mut trailer_budget).map_err(truncated)?;
                    if t.is_empty() {
                        break;
                    }
                }
                break;
            }
            let mut chunk = vec![0u8; size];
            reader
                .read_exact(&mut chunk)
                .map_err(|e| truncated(RequestError::from(e)))?;
            raw.extend_from_slice(&chunk);
            // Consume the CRLF after the chunk data.
            let mut crlf = [0u8; 2];
            reader
                .read_exact(&mut crlf)
                .map_err(|e| truncated(RequestError::from(e)))?;
        }
    } else {
        let len = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        raw = vec![0u8; len];
        reader
            .read_exact(&mut raw)
            .map_err(|e| truncated(RequestError::from(e)))?;
    }
    let body = String::from_utf8(raw)
        .map_err(|_| RequestError::Malformed("response body is not valid UTF-8".into()))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<Request>, RequestError> {
        let mut parser = RequestParser::new();
        parser.feed(bytes);
        parser.try_next()
    }

    #[test]
    fn byte_at_a_time_delivery_parses_identically() {
        let wire = b"POST /v1/evaluate?q=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let mut parser = RequestParser::new();
        for b in wire.iter() {
            assert!(parser.try_next().unwrap().is_none());
            parser.feed(&[*b]);
        }
        let request = parser.try_next().unwrap().expect("complete");
        assert_eq!(request.method(), "POST");
        assert_eq!(request.path(), "/v1/evaluate");
        assert_eq!(request.body(), "body");
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.header("content-length"), Some("4"));
        assert!(request.keep_alive);
        assert!(!parser.mid_request());
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi");
        let first = parser.try_next().unwrap().expect("first");
        assert_eq!((first.method(), first.path()), ("GET", "/a"));
        let second = parser.try_next().unwrap().expect("second");
        assert_eq!((second.method(), second.path()), ("POST", "/b"));
        assert_eq!(second.body(), "hi");
        assert!(parser.try_next().unwrap().is_none());
    }

    #[test]
    fn leading_blank_lines_are_tolerated() {
        let request = parse_all(b"\r\n\r\nGET / HTTP/1.1\r\n\r\n")
            .unwrap()
            .expect("complete");
        assert_eq!(request.method(), "GET");
    }

    #[test]
    fn bare_lf_line_endings_parse() {
        let request = parse_all(b"GET /x HTTP/1.1\nhost: y\n\n")
            .unwrap()
            .expect("complete");
        assert_eq!(request.path(), "/x");
        assert_eq!(request.header("host"), Some("y"));
    }

    #[test]
    fn chunked_transfer_encoding_is_a_typed_411() {
        let got = parse_all(
            b"POST /v1/evaluate HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nbody\r\n0\r\n\r\n",
        );
        assert!(matches!(got, Err(RequestError::LengthRequired)), "{got:?}");
        // A transfer coding we don't know at all is a plain 400.
        let got = parse_all(b"POST / HTTP/1.1\r\ntransfer-encoding: gzip\r\n\r\n");
        assert!(matches!(got, Err(RequestError::Malformed(_))), "{got:?}");
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let got =
            parse_all(b"POST / HTTP/1.1\r\ncontent-length: 5\r\ncontent-length: 6\r\n\r\nhello!");
        match got {
            Err(RequestError::Malformed(m)) => assert!(m.contains("content-length"), "{m}"),
            other => panic!("expected malformed, got {other:?}"),
        }
        // A comma list that disagrees is the same smuggling shape.
        let got = parse_all(b"POST / HTTP/1.1\r\ncontent-length: 5, 6\r\n\r\nhello!");
        assert!(matches!(got, Err(RequestError::Malformed(_))), "{got:?}");
        // Duplicates that agree are fine (RFC 9110 §8.6).
        let request =
            parse_all(b"POST / HTTP/1.1\r\ncontent-length: 5\r\ncontent-length: 5\r\n\r\nhello")
                .unwrap()
                .expect("complete");
        assert_eq!(request.body(), "hello");
    }

    #[test]
    fn oversized_heads_and_bodies_are_typed_errors() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\nx: ");
        parser.feed(&vec![b'a'; MAX_HEADER_BYTES + 1]);
        assert!(matches!(parser.try_next(), Err(RequestError::Malformed(_))));
        let got = parse_all(b"POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n");
        assert!(matches!(got, Err(RequestError::BodyTooLarge(99999999))));
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        assert!(matches!(
            parse_all(b"TOTAL GARBAGE\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse_all(b"GET / SPDY/3\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse_all(b"GET / HTTP/1.1 extra\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse_all(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn mid_request_distinguishes_started_from_idle() {
        let mut parser = RequestParser::new();
        assert!(!parser.mid_request());
        // Stray blank lines between keep-alive requests are idle, not a
        // started request.
        parser.feed(b"\r\n");
        assert!(!parser.mid_request());
        parser.feed(b"POST / HTTP/1.1\r\n");
        assert!(parser.mid_request());
        parser.feed(b"content-length: 4\r\n\r\nbo");
        assert!(parser.try_next().unwrap().is_none());
        assert!(parser.mid_request(), "mid-body is mid-request");
        parser.feed(b"dy");
        assert!(parser.try_next().unwrap().is_some());
        assert!(!parser.mid_request());
    }

    #[test]
    fn http_1_0_defaults_to_close_and_connection_close_is_honored() {
        let request = parse_all(b"GET / HTTP/1.0\r\n\r\n")
            .unwrap()
            .expect("complete");
        assert!(!request.keep_alive);
        let request = parse_all(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n")
            .unwrap()
            .expect("complete");
        assert!(!request.keep_alive);
        let request = parse_all(b"GET / HTTP/1.1\r\n\r\n")
            .unwrap()
            .expect("complete");
        assert!(request.keep_alive);
    }

    #[test]
    fn non_utf8_bodies_are_rejected() {
        let got = parse_all(b"POST / HTTP/1.1\r\ncontent-length: 2\r\n\r\n\xff\xfe");
        assert!(matches!(got, Err(RequestError::Malformed(_))), "{got:?}");
    }

    #[test]
    fn response_encoding_roundtrips_through_the_client_reader() {
        let bytes = encode_response(200, "application/json", "{\"ok\":true}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
        let head =
            String::from_utf8(encode_chunked_head(200, "application/x-ndjson", false)).unwrap();
        assert!(head.contains("transfer-encoding: chunked\r\n"), "{head}");
        assert!(head.contains("connection: close\r\n"), "{head}");
        let chunk = String::from_utf8(encode_chunk("abc")).unwrap();
        assert_eq!(chunk, "3\r\nabc\r\n");
        assert!(encode_chunk("").is_empty());
    }

    /// Regression: `read_response` must keep `Closed` reserved for a
    /// clean end-of-stream *before any response byte* — the signal a
    /// keep-alive client may safely answer with a reconnect-and-resend.
    /// A stream that dies mid-response is a truncation instead: the
    /// server may already be executing the request, so re-sending it
    /// would double-execute.
    #[test]
    fn read_response_types_clean_close_apart_from_truncation() {
        let whole = b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok";
        let mut cursor = std::io::Cursor::new(whole.to_vec());
        let response = read_response(&mut cursor).expect("intact response");
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "ok");

        // EOF before the first byte: the stale-keep-alive close.
        let mut empty = std::io::Cursor::new(Vec::new());
        assert!(matches!(
            read_response(&mut empty),
            Err(RequestError::Closed)
        ));

        // EOF mid-headers and EOF mid-body: truncations, not closes.
        for cut in [whole.len() - 20, whole.len() - 1] {
            let mut cursor = std::io::Cursor::new(whole[..cut].to_vec());
            let got = read_response(&mut cursor);
            assert!(
                matches!(got, Err(RequestError::Malformed(_))),
                "cut at {cut}: {got:?}"
            );
        }

        // Same for a chunked stream that dies between chunks.
        let chunked = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n2\r\nok\r\n";
        let mut cursor = std::io::Cursor::new(chunked.to_vec());
        assert!(matches!(
            read_response(&mut cursor),
            Err(RequestError::Malformed(_))
        ));
    }
}
