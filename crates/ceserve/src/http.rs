//! A minimal, dependency-free HTTP/1.1 implementation on `std::net`:
//! just enough protocol for the benchmark service — request parsing with
//! hard size limits, keep-alive, fixed-length responses, and chunked
//! transfer encoding for streamed batch results. Both sides of the wire
//! live here: the server uses [`parse_request`] and the response writers,
//! the load-generator client uses [`write_request`] and [`read_response`].

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body. Anything bigger is answered with a
/// typed `413` and the connection is closed.
pub const MAX_BODY_BYTES: usize = 4 << 20;
/// Largest accepted header section.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Most headers accepted on one request.
const MAX_HEADERS: usize = 64;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any query string stripped.
    pub path: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded body (empty when the request has none).
    pub body: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out (idle keep-alive connection).
    Timeout,
    /// The bytes on the wire are not a valid HTTP/1.x request — answer
    /// `400` and close.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`] — answer `413` and
    /// close.
    BodyTooLarge(usize),
    /// Transport failure mid-request.
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> RequestError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => RequestError::Timeout,
            io::ErrorKind::UnexpectedEof => RequestError::Closed,
            io::ErrorKind::InvalidData => RequestError::Malformed("not valid UTF-8".into()),
            _ => RequestError::Io(e),
        }
    }
}

/// Reads one line (up to CRLF or LF), enforcing a byte budget.
///
/// The budget bounds the *read itself* (via `Read::take`), not just the
/// finished line, so a newline-free byte stream is answered with a typed
/// 400 at the budget mark instead of buffering without limit.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, RequestError> {
    let mut line = String::new();
    let n = (&mut *reader)
        .take(*budget as u64 + 1)
        .read_line(&mut line)
        .map_err(RequestError::from)?;
    if n == 0 {
        return Err(RequestError::Closed);
    }
    if n > *budget {
        return Err(RequestError::Malformed("header section too large".into()));
    }
    *budget -= n;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Parses one request from a buffered connection.
///
/// The reader must wrap the same stream across calls so pipelined /
/// keep-alive requests do not lose buffered bytes.
pub fn parse_request(reader: &mut BufReader<TcpStream>) -> Result<Request, RequestError> {
    let mut budget = MAX_HEADER_BYTES;
    // Tolerate blank lines before the request line (RFC 9112 §2.2).
    let request_line = loop {
        let line = read_line(reader, &mut budget)?;
        if !line.trim().is_empty() {
            break line;
        }
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_owned();

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let request = Request {
        method: method.to_ascii_uppercase(),
        path,
        headers,
        body: String::new(),
        keep_alive: true,
    };
    let keep_alive = match request.header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c.contains("close") => false,
        _ => version != "HTTP/1.0",
    };

    let content_length = match request.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| RequestError::Malformed(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::BodyTooLarge(content_length));
    }
    let mut raw = vec![0u8; content_length];
    reader.read_exact(&mut raw).map_err(RequestError::from)?;
    let body = String::from_utf8(raw)
        .map_err(|_| RequestError::Malformed("body is not valid UTF-8".into()))?;
    Ok(Request {
        body,
        keep_alive,
        ..request
    })
}

/// Human reason phrase for the status codes the service speaks.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one fixed-length response.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A chunked-transfer response in progress (the `/v1/batch` stream).
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
    keep_alive: bool,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and switches the body to chunked
    /// transfer encoding.
    pub fn begin(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
        keep_alive: bool,
    ) -> io::Result<ChunkedWriter<'a>> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let head = format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\nconnection: {connection}\r\n\r\n",
            reason(status),
        );
        stream.write_all(head.as_bytes())?;
        Ok(ChunkedWriter { stream, keep_alive })
    }

    /// Sends one chunk (empty input is skipped — a zero-length chunk
    /// would terminate the stream).
    pub fn write_chunk(&mut self, data: &str) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data.as_bytes())?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunk stream. Returns whether the connection may be
    /// kept open.
    pub fn finish(self) -> io::Result<bool> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()?;
        Ok(self.keep_alive)
    }
}

/// One parsed HTTP response (client side).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Full body, chunked transfer already decoded.
    pub body: String,
}

impl Response {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Writes one client request. `body` implies `POST`-style framing with a
/// `content-length`.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<()> {
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: ceserve\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads one full response, decoding chunked transfer encoding when the
/// server streamed it.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> Result<Response, RequestError> {
    let mut budget = MAX_HEADER_BYTES;
    let status_line = read_line(reader, &mut budget)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| RequestError::Malformed(format!("bad status line {status_line:?}")))?;
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.to_ascii_lowercase().contains("chunked"));
    let mut raw: Vec<u8> = Vec::new();
    if chunked {
        loop {
            let mut line_budget = MAX_HEADER_BYTES;
            let size_line = read_line(reader, &mut line_budget)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| RequestError::Malformed(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                // Trailer section: read through the final blank line.
                loop {
                    let mut trailer_budget = MAX_HEADER_BYTES;
                    let t = read_line(reader, &mut trailer_budget)?;
                    if t.is_empty() {
                        break;
                    }
                }
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk).map_err(RequestError::from)?;
            raw.extend_from_slice(&chunk);
            // Consume the CRLF after the chunk data.
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf).map_err(RequestError::from)?;
        }
    } else {
        let len = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        raw = vec![0u8; len];
        reader.read_exact(&mut raw).map_err(RequestError::from)?;
    }
    let body = String::from_utf8(raw)
        .map_err(|_| RequestError::Malformed("response body is not valid UTF-8".into()))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}
