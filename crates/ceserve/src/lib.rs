//! # ceserve
//!
//! Benchmark-as-a-service: an event-driven HTTP/1.1 server (hand-rolled
//! on `std::net` — no dependencies, per the offline vendor policy)
//! exposing the CloudEval-YAML evaluation pipeline as a JSON API, plus
//! the load-generator client that exercises it.
//!
//! The serving core is readiness-driven, not thread-per-connection: one
//! event loop owns every socket through a nonblocking [`poll`] shim and
//! a generation-tagged connection slab, an incremental
//! [`http::RequestParser`] assembles requests byte by byte, and a fixed
//! worker pool scores the slow endpoints through a completion channel.
//! Thousands of idle keep-alive connections cost slab slots, not
//! threads — see [`server`] for the life of a request.
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `GET /v1/problems` | The problem corpus (ids, categories, variants) |
//! | `POST /v1/evaluate` | Score one candidate → full verdict |
//! | `POST /v1/batch` | Stream many candidates through the stage-graph (chunked) |
//! | `GET /v1/stats` | Memo hit rate, queue depth, per-stage occupancy |
//!
//! Request/response bodies ride the same engine as the benchmark itself:
//! encoded with [`yamlkit::json::to_json`], decoded through the YAML
//! parser (JSON is a YAML subset). Verdicts come from
//! [`cloudeval_core::harness::score_submission`] /
//! [`score_submissions_stream`](cloudeval_core::harness::score_submissions_stream),
//! so a response is bit-identical to what a direct pipeline run produces
//! for the same candidate. One process-wide
//! [`ScoreMemo`](evalcluster::memo::ScoreMemo) backs every request and
//! can be persisted as JSONL across restarts
//! ([`ServerConfig::memo_path`]).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//!
//! let dataset = Arc::new(cedataset::Dataset::generate());
//! let server = ceserve::spawn(
//!     "127.0.0.1:0",
//!     Arc::clone(&dataset),
//!     ceserve::ServerConfig::default(),
//! )
//! .unwrap();
//!
//! let corpus = ceserve::loadgen::build_corpus(&dataset, 8);
//! let report = ceserve::loadgen::run(
//!     server.addr(),
//!     &corpus,
//!     &ceserve::loadgen::LoadGenConfig {
//!         clients: 2,
//!         requests: 8,
//!         ..Default::default()
//!     },
//! )
//! .unwrap();
//! assert_eq!(report.outcomes.len(), 8);
//! server.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod loadgen;
pub mod poll;
pub mod server;

pub use api::{Service, ServiceStats};
pub use server::{spawn, ServerConfig, ServerHandle};
