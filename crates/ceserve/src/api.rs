//! The JSON API: routing, body decoding, response encoding, and the
//! service state shared by every worker.
//!
//! The wire format is produced by [`yamlkit::json::to_json`] and decoded
//! through the YAML parser (JSON is a YAML subset), so requests and
//! responses get the exact parser guarantees the benchmark itself runs
//! on — floats stay floats, quoted number-lookalikes stay strings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cedataset::{Dataset, Variant};
use cescore::RefCache;
use cloudeval_core::harness::{
    score_submission_doc, score_submissions_stream, StageGauges, Submission, SubmissionVerdict,
};
use evalcluster::memo::ScoreMemo;
use llmsim::extract_yaml;
use substrate::taxonomy::Bucket;
use yamlkit::{ymap, PreparedDoc, Yaml};

use crate::http::{self, Request, MAX_BODY_BYTES};

/// Where framed response bytes go.
///
/// The event loop handles cheap requests inline with a [`BufSink`]
/// (bytes land straight in the connection's output buffer); worker
/// threads handle scoring requests with a completion-channel sink that
/// re-arms the connection for writing. Either way the handler never
/// touches a socket, so a slow reader can never wedge the thread that
/// computes responses.
pub trait ResponseSink: Send {
    /// Queues framed bytes toward the client. `false` means the client
    /// is gone — streaming handlers stop writing (but may keep scoring;
    /// verdicts still land in the shared memo).
    fn send(&mut self, bytes: Vec<u8>) -> bool;
}

/// A [`ResponseSink`] over a plain output buffer (the inline fast path).
pub struct BufSink<'a>(pub &'a mut Vec<u8>);

impl ResponseSink for BufSink<'_> {
    fn send(&mut self, bytes: Vec<u8>) -> bool {
        self.0.extend_from_slice(&bytes);
        true
    }
}

/// Most items accepted in one `/v1/batch` request.
pub const MAX_BATCH_ITEMS: usize = 4096;

/// Longest accepted `x-request-id` value.
const MAX_REQUEST_ID: usize = 128;

/// Wire labels of the service's endpoints — the `endpoint` label values
/// on `http_requests_total` and `http_request_us`.
const ENDPOINTS: [&str; 6] = ["problems", "stats", "metrics", "evaluate", "batch", "other"];

fn endpoint_index(path: &str) -> usize {
    match path {
        "/v1/problems" => 0,
        "/v1/stats" => 1,
        "/v1/metrics" => 2,
        "/v1/evaluate" => 3,
        "/v1/batch" => 4,
        _ => 5,
    }
}

fn id_value_ok(value: &str) -> bool {
    !value.is_empty()
        && value.len() <= MAX_REQUEST_ID
        && value.bytes().all(|b| (0x21..=0x7e).contains(&b))
}

/// The request's `x-request-id` header value, when present and wire-safe
/// (visible ASCII, at most `MAX_REQUEST_ID` = 128 bytes). The service echoes
/// it verbatim on every response to the request, so client-side and
/// server-side observations of one request correlate.
pub fn request_id(request: &Request) -> Option<&str> {
    request.header("x-request-id").filter(|v| id_value_ok(v))
}

/// Scans raw (possibly incomplete) request bytes for an `x-request-id`
/// header, so responses sent before a request finishes parsing (408
/// timeout, 400 parse failure, 503 shed) still correlate.
pub fn scan_request_id(bytes: &[u8]) -> Option<String> {
    let text = String::from_utf8_lossy(bytes);
    for line in text.split(['\r', '\n']) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("x-request-id") {
            let value = value.trim();
            return id_value_ok(value).then(|| value.to_owned());
        }
    }
    None
}

/// Pre-resolved handles into this service's private metrics registry, so
/// the per-request hot path pays atomic increments, never a registry
/// lookup. Serving metrics (`http_*`) live here, isolated per
/// [`Service`]; engine metrics (`stage_*`, `memo_*`, `substrate_*`, ...)
/// live in [`obs::global`] — `GET /v1/metrics` renders both.
pub struct HttpMetrics {
    registry: obs::Registry,
    pub(crate) request_us: [obs::Histogram; ENDPOINTS.len()],
    pub(crate) requests_total: [obs::Counter; ENDPOINTS.len()],
    pub(crate) accept_to_first_byte_us: obs::Histogram,
    pub(crate) assembly_us: obs::Histogram,
    pub(crate) handler_us: obs::Histogram,
    pub(crate) queue_wait_us: obs::Histogram,
    pub(crate) write_drain_us: obs::Histogram,
    pub(crate) bytes_in: obs::Counter,
    pub(crate) bytes_out: obs::Counter,
}

impl HttpMetrics {
    fn new() -> HttpMetrics {
        let registry = obs::Registry::new();
        let request_us = ENDPOINTS.map(|e| {
            registry.histogram(
                "http_request_us",
                &[("endpoint", e)],
                "end-to-end handler latency of one request",
            )
        });
        let requests_total = ENDPOINTS.map(|e| {
            registry.counter(
                "http_requests_total",
                &[("endpoint", e)],
                "requests answered, by endpoint",
            )
        });
        let phase = |p| {
            registry.histogram(
                "http_phase_us",
                &[("phase", p)],
                "time one request spent in one serving phase",
            )
        };
        let bytes = |d| {
            registry.counter(
                "http_bytes_total",
                &[("direction", d)],
                "request and response bytes moved",
            )
        };
        HttpMetrics {
            request_us,
            requests_total,
            accept_to_first_byte_us: phase("accept_to_first_byte"),
            assembly_us: phase("assembly"),
            handler_us: phase("handler"),
            queue_wait_us: phase("queue_wait"),
            write_drain_us: phase("write_drain"),
            bytes_in: bytes("in"),
            bytes_out: bytes("out"),
            registry,
        }
    }

    /// The registry behind this service's `http_*` series.
    pub fn registry(&self) -> &obs::Registry {
        &self.registry
    }
}

/// Most entries held in the in-process response cache before it resets.
const MAX_RESPONSE_CACHE: usize = 65_536;

/// Wire label of a variant (`original` / `simplified` / `translated`).
pub fn variant_wire(variant: Variant) -> &'static str {
    match variant {
        Variant::Original => "original",
        Variant::Simplified => "simplified",
        Variant::Translated => "translated",
    }
}

/// Parses a wire variant label.
pub fn parse_variant(label: &str) -> Option<Variant> {
    match label {
        "original" => Some(Variant::Original),
        "simplified" => Some(Variant::Simplified),
        "translated" => Some(Variant::Translated),
        _ => None,
    }
}

/// Request counters, gauges and timing shared across workers.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// All requests answered (any status).
    pub requests: AtomicUsize,
    /// `GET /v1/problems` requests.
    pub problems_requests: AtomicUsize,
    /// `POST /v1/evaluate` requests.
    pub evaluate_requests: AtomicUsize,
    /// `POST /v1/batch` requests.
    pub batch_requests: AtomicUsize,
    /// `GET /v1/stats` requests.
    pub stats_requests: AtomicUsize,
    /// `GET /v1/metrics` requests.
    pub metrics_requests: AtomicUsize,
    /// Requests answered with a 4xx error.
    pub client_errors: AtomicUsize,
    /// Individual records streamed through `/v1/batch`.
    pub batch_records: AtomicUsize,
    /// Connections waiting in the bounded accept queue.
    pub queue_depth: AtomicUsize,
    /// Connections rejected with `503` because the queue was full.
    pub rejected_busy: AtomicUsize,
    /// Connections currently held by workers.
    pub connections: AtomicUsize,
    /// Workers currently processing a request.
    pub busy_workers: AtomicUsize,
    /// Requests answered from the full-verdict response cache (no
    /// extraction, scoring or substrate work at all).
    pub response_cache_hits: AtomicUsize,
    /// Deployment failures among freshly judged submissions, bucketed by
    /// the error taxonomy (indexed by [`Bucket::index`]). Cache replays
    /// do not re-count.
    pub taxonomy_failures: [AtomicUsize; Bucket::ALL.len()],
}

impl ServiceStats {
    /// Folds one freshly judged verdict into the taxonomy counters. A
    /// failure whose verdict carries no diagnosis (a legacy memo entry)
    /// counts as `unknown`.
    pub fn record_judged(&self, verdict: &SubmissionVerdict) {
        if verdict.passed {
            return;
        }
        let bucket = verdict
            .failure_bucket
            .as_deref()
            .and_then(Bucket::from_label)
            .unwrap_or(Bucket::Unknown);
        self.taxonomy_failures[bucket.index()].fetch_add(1, Ordering::Relaxed);
    }
}

/// The process-wide benchmark service: the problem corpus, one shared
/// verdict memo, live statistics and stage gauges.
pub struct Service {
    dataset: Arc<Dataset>,
    index: HashMap<String, usize>,
    memo: Arc<ScoreMemo>,
    /// Full verdicts keyed by `(candidate, problem@variant)` content
    /// hash: a repeat submission of an already-judged candidate is
    /// answered without recomputing anything — the substrate memo makes
    /// repeats skip execution, this layer makes them skip scoring too.
    /// In-process only; across restarts the persisted [`ScoreMemo`]
    /// still guarantees no substrate re-execution.
    responses: Mutex<HashMap<(u64, u64), SubmissionVerdict>>,
    /// Prepared-reference cache: each problem's labeled reference is
    /// parsed once per process lifetime, no matter how many submissions
    /// it judges.
    refs: RefCache,
    gauges: StageGauges,
    stats: ServiceStats,
    metrics: HttpMetrics,
    workers: usize,
    started: Instant,
}

impl Service {
    /// Builds the service over a problem corpus. `workers` is the width
    /// used for `/v1/batch` stage pools (and mirrors the HTTP pool).
    pub fn new(dataset: Arc<Dataset>, memo: Arc<ScoreMemo>, workers: usize) -> Service {
        let index = dataset
            .problems()
            .iter()
            .enumerate()
            .map(|(i, p)| (p.id.clone(), i))
            .collect();
        Service {
            dataset,
            index,
            memo,
            responses: Mutex::new(HashMap::new()),
            refs: RefCache::new(),
            gauges: StageGauges::new(),
            stats: ServiceStats::default(),
            metrics: HttpMetrics::new(),
            workers: workers.max(1),
            started: Instant::now(),
        }
    }

    /// The problem corpus this service judges against.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The shared verdict memo.
    pub fn memo(&self) -> &Arc<ScoreMemo> {
        &self.memo
    }

    /// Live statistics counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Serving-layer metrics (`http_*` series) for this service.
    pub fn metrics(&self) -> &HttpMetrics {
        &self.metrics
    }

    /// Looks a problem up by id.
    pub fn problem(&self, id: &str) -> Option<&cedataset::Problem> {
        self.index.get(id).map(|&i| &self.dataset.problems()[i])
    }

    /// Drops both caches (verdict memo and response cache) — the
    /// cold-cache reset the `serve_engine` benchmark measures against.
    pub fn clear_caches(&self) {
        self.memo.clear();
        self.responses
            .lock()
            .expect("response cache poisoned")
            .clear();
    }

    /// A cache-served copy of an already-judged submission, if any.
    fn cached_response(&self, key: (u64, u64)) -> Option<SubmissionVerdict> {
        let found = self
            .responses
            .lock()
            .expect("response cache poisoned")
            .get(&key)
            .cloned();
        if found.is_some() {
            self.stats
                .response_cache_hits
                .fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores a fresh verdict for replay. Bounded: the cache resets when
    /// it would outgrow [`MAX_RESPONSE_CACHE`].
    fn store_response(&self, key: (u64, u64), verdict: SubmissionVerdict) {
        let mut cache = self.responses.lock().expect("response cache poisoned");
        if cache.len() >= MAX_RESPONSE_CACHE {
            cache.clear();
        }
        cache.insert(key, verdict);
    }
}

/// The response-cache key for an item: **extracted** candidate content ×
/// problem × variant (the same content-addressing vocabulary as the
/// score memo — the candidate side is exactly the `PreparedDoc`'s
/// content hash, so two raw bodies that extract to the same YAML share
/// one cached verdict).
fn response_key(item: &EvalItem<'_>) -> (u64, u64) {
    (
        yamlkit::doc::content_hash(&item.extracted),
        yamlkit::doc::content_hash(&format!(
            "{}@{}",
            item.problem.id,
            variant_wire(item.variant)
        )),
    )
}

/// A typed client error: `(status, code, message)` rendered as
/// `{"error":{"code":...,"message":...}}`.
struct ApiError {
    status: u16,
    code: &'static str,
    message: String,
}

impl ApiError {
    fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            code: "bad_request",
            message: message.into(),
        }
    }

    fn unknown_problem(id: &str) -> ApiError {
        ApiError {
            status: 404,
            code: "unknown_problem",
            message: format!("no problem with id {id:?}"),
        }
    }

    fn body(&self) -> String {
        yamlkit::json::to_json(&ymap! {
            "error" => ymap! {
                "code" => self.code,
                "message" => self.message.clone(),
            },
        })
    }
}

/// Encodes one verdict as a wire object.
pub fn verdict_to_yaml(v: &SubmissionVerdict) -> Yaml {
    ymap! {
        "problem_id" => v.problem_id.clone(),
        "variant" => variant_wire(v.variant),
        "passed" => v.passed,
        "cached" => v.cached,
        "simulated_ms" => i64::try_from(v.simulated_ms).unwrap_or(i64::MAX),
        "answer_class" => format!("{:?}", v.answer_class),
        "failure_bucket" => v.failure_bucket.clone().map_or(Yaml::Null, Yaml::Str),
        "score_issue" => v.score_issue.clone().map_or(Yaml::Null, Yaml::Str),
        "scores" => ymap! {
            "bleu" => v.scores.bleu,
            "edit_distance" => v.scores.edit_distance,
            "exact_match" => v.scores.exact_match,
            "kv_exact" => v.scores.kv_exact,
            "kv_wildcard" => v.scores.kv_wildcard,
            "unit_test" => v.scores.unit_test,
        },
        "extracted" => v.extracted.clone(),
    }
}

/// One decoded `/v1/evaluate`-shaped item.
struct EvalItem<'s> {
    problem: &'s cedataset::Problem,
    variant: Variant,
    /// The raw candidate body, as submitted.
    candidate: String,
    /// §3.1 post-processed candidate (extraction is a cheap string scan,
    /// done once at decode so the response cache can be keyed on content
    /// before any parsing or scoring happens).
    extracted: String,
}

/// Decodes an item object (`{"problem_id", "candidate", "variant"?}`).
fn decode_item<'s>(service: &'s Service, value: &Yaml, at: &str) -> Result<EvalItem<'s>, ApiError> {
    let id = value
        .get("problem_id")
        .and_then(Yaml::as_str)
        .ok_or_else(|| ApiError::bad_request(format!("{at}: missing string \"problem_id\"")))?;
    let candidate = value
        .get("candidate")
        .and_then(Yaml::as_str)
        .ok_or_else(|| ApiError::bad_request(format!("{at}: missing string \"candidate\"")))?;
    let variant = match value.get("variant") {
        None | Some(Yaml::Null) => Variant::Original,
        Some(v) => v
            .as_str()
            .and_then(parse_variant)
            .ok_or_else(|| ApiError::bad_request(format!("{at}: bad \"variant\"")))?,
    };
    let problem = service
        .problem(id)
        .ok_or_else(|| ApiError::unknown_problem(id))?;
    Ok(EvalItem {
        problem,
        variant,
        candidate: candidate.to_owned(),
        extracted: extract_yaml(candidate),
    })
}

/// Parses a JSON request body through the YAML engine.
fn decode_body(body: &str) -> Result<Yaml, ApiError> {
    if body.trim().is_empty() {
        return Err(ApiError::bad_request("empty request body"));
    }
    yamlkit::parse_one(body)
        .map(|n| n.to_value())
        .map_err(|e| ApiError::bad_request(format!("body is not valid JSON/YAML: {e}")))
}

/// `GET /v1/problems`.
fn problems_body(service: &Service) -> String {
    let problems: Yaml = service
        .dataset
        .problems()
        .iter()
        .map(|p| {
            ymap! {
                "id" => p.id.clone(),
                "category" => p.category.label(),
                "application" => format!("{:?}", p.category.application()),
                "variants" => Variant::ALL.iter().map(|v| variant_wire(*v)).collect::<Yaml>(),
                "has_context" => p.has_context(),
                "reference_lines" => i64::try_from(p.reference_lines()).unwrap_or(0),
            }
        })
        .collect();
    yamlkit::json::to_json(&ymap! {
        "count" => i64::try_from(service.dataset.len()).unwrap_or(0),
        "problems" => problems,
    })
}

/// `GET /v1/stats`.
fn stats_body(service: &Service) -> String {
    let s = &service.stats;
    let memo = &service.memo;
    let (hits, misses) = (memo.hits(), memo.misses());
    let lookups = hits + misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };
    let count = |a: &AtomicUsize| i64::try_from(a.load(Ordering::Relaxed)).unwrap_or(0);
    let g = &service.gauges;
    let m = &service.metrics;
    let latency: Yaml = Yaml::Map(
        ENDPOINTS
            .iter()
            .zip(&m.request_us)
            .map(|(endpoint, hist)| {
                let snap = hist.snapshot();
                (
                    (*endpoint).to_string(),
                    ymap! {
                        "count" => i64::try_from(snap.count).unwrap_or(i64::MAX),
                        "mean_us" => snap.mean_us(),
                        "p50_us" => snap.p50_us(),
                        "p99_us" => snap.p99_us(),
                    },
                )
            })
            .collect(),
    );
    // The scoring-kernel histograms live in the process-global obs
    // registry (cescore registers them on first score), not the
    // service's own: absent until the first evaluation is scored.
    let score_kernels: Yaml = Yaml::Map(
        ["bleu", "editdist"]
            .iter()
            .filter_map(|metric| {
                let snap =
                    obs::global().histogram_snapshot("score_kernel_us", &[("metric", metric)])?;
                Some((
                    (*metric).to_string(),
                    ymap! {
                        "count" => i64::try_from(snap.count).unwrap_or(i64::MAX),
                        "mean_us" => snap.mean_us(),
                        "p50_us" => snap.p50_us(),
                        "p99_us" => snap.p99_us(),
                    },
                ))
            })
            .collect(),
    );
    yamlkit::json::to_json(&ymap! {
        "uptime_ms" => i64::try_from(service.started.elapsed().as_millis()).unwrap_or(i64::MAX),
        "uptime_seconds" => i64::try_from(service.started.elapsed().as_secs()).unwrap_or(i64::MAX),
        "workers" => i64::try_from(service.workers).unwrap_or(0),
        "requests" => ymap! {
            "total" => count(&s.requests),
            "problems" => count(&s.problems_requests),
            "evaluate" => count(&s.evaluate_requests),
            "batch" => count(&s.batch_requests),
            "stats" => count(&s.stats_requests),
            "metrics" => count(&s.metrics_requests),
            "errors_4xx" => count(&s.client_errors),
        },
        "bytes" => ymap! {
            "in" => i64::try_from(m.bytes_in.get()).unwrap_or(i64::MAX),
            "out" => i64::try_from(m.bytes_out.get()).unwrap_or(i64::MAX),
        },
        "latency" => latency,
        "score_kernels" => score_kernels,
        "connections" => ymap! {
            "active" => count(&s.connections),
            "accept_queue_depth" => count(&s.queue_depth),
            "rejected_busy" => count(&s.rejected_busy),
            "busy_workers" => count(&s.busy_workers),
        },
        "memo" => ymap! {
            "entries" => i64::try_from(memo.len()).unwrap_or(0),
            "hits" => i64::try_from(hits).unwrap_or(0),
            "misses" => i64::try_from(misses).unwrap_or(0),
            "hit_rate" => hit_rate,
        },
        "response_cache" => ymap! {
            "entries" => i64::try_from(
                service.responses.lock().expect("response cache poisoned").len()
            ).unwrap_or(0),
            "hits" => count(&s.response_cache_hits),
        },
        "stages" => ymap! {
            "extracting" => i64::try_from(g.extracting()).unwrap_or(0),
            "scoring" => i64::try_from(g.scoring()).unwrap_or(0),
            "executing" => i64::try_from(g.executing()).unwrap_or(0),
            "completed" => i64::try_from(g.completed()).unwrap_or(0),
        },
        "taxonomy" => Yaml::Map(
            Bucket::ALL
                .iter()
                .map(|b| (
                    b.label().to_string(),
                    Yaml::Int(count(&s.taxonomy_failures[b.index()])),
                ))
                .collect(),
        ),
        "batch_records" => count(&s.batch_records),
    })
}

/// `GET /v1/metrics`: Prometheus text exposition — this service's
/// `http_*` series followed by the process-wide engine series
/// (`stage_*`, `shard_*`, `memo_*`, `substrate_*`, `llm_*`). The two
/// registries use disjoint metric names, so the concatenation never
/// duplicates a series.
fn metrics_body(service: &Service) -> String {
    let mut text = obs::expo::render(&service.metrics.registry.snapshot());
    text.push_str(&obs::expo::render(&obs::global().snapshot()));
    text
}

/// `POST /v1/evaluate`.
fn evaluate_body(service: &Service, request: &Request) -> Result<String, ApiError> {
    let value = decode_body(request.body())?;
    let mut item = decode_item(service, &value, "body")?;
    let key = response_key(&item);
    if let Some(mut verdict) = service.cached_response(key) {
        verdict.cached = true;
        return Ok(yamlkit::json::to_json(&verdict_to_yaml(&verdict)));
    }
    // Cache miss: the candidate's one-and-only parse. The PreparedDoc
    // built here flows through static scoring and substrate execution.
    let doc = PreparedDoc::shared(std::mem::take(&mut item.extracted));
    let verdict = score_submission_doc(
        item.problem,
        item.variant,
        &doc,
        &service.memo,
        &service.refs,
    );
    service.stats.record_judged(&verdict);
    service.store_response(key, verdict.clone());
    Ok(yamlkit::json::to_json(&verdict_to_yaml(&verdict)))
}

/// `POST /v1/batch`: decodes every item up front (any invalid item fails
/// the whole request with a typed 400 before work starts), then streams
/// verdicts back in completion order as one JSON object per chunk.
fn batch_stream<S: ResponseSink>(
    service: &Service,
    request: &Request,
    sink: &mut S,
    extra_headers: &[(&str, &str)],
) -> Result<bool, ApiError> {
    let value = decode_body(request.body())?;
    let items = match value.get("items") {
        Some(Yaml::Seq(items)) => items,
        _ => return Err(ApiError::bad_request("missing array \"items\"")),
    };
    if items.len() > MAX_BATCH_ITEMS {
        return Err(ApiError::bad_request(format!(
            "too many items: {} > {MAX_BATCH_ITEMS}",
            items.len()
        )));
    }
    let decoded: Vec<EvalItem<'_>> = items
        .iter()
        .enumerate()
        .map(|(i, v)| decode_item(service, v, &format!("items[{i}]")))
        .collect::<Result<_, _>>()?;

    // Partition: items the response cache already answers stream out
    // immediately; only the rest enter the stage-graph.
    let mut replayed: Vec<(usize, SubmissionVerdict)> = Vec::new();
    let mut fresh_indices: Vec<usize> = Vec::new();
    let mut submissions: Vec<Submission<'_>> = Vec::new();
    for (index, item) in decoded.iter().enumerate() {
        match service.cached_response(response_key(item)) {
            Some(mut verdict) => {
                verdict.cached = true;
                replayed.push((index, verdict));
            }
            None => {
                fresh_indices.push(index);
                submissions.push(Submission {
                    problem: item.problem,
                    variant: item.variant,
                    raw: item.candidate.clone(),
                    // decode_item already ran §3.1; don't extract twice.
                    extracted: Some(item.extracted.clone()),
                });
            }
        }
    }
    let replayed_count = replayed.len();

    // From here on the status line is committed; a vanished client just
    // stops the stream (`alive` flips false and writes become no-ops).
    let head = http::encode_chunked_head_with(
        200,
        "application/x-ndjson",
        request.keep_alive,
        extra_headers,
    );
    let writer = Mutex::new((sink, true));
    if !{
        let mut guard = writer.lock().expect("batch writer poisoned");
        let ok = guard.0.send(head);
        guard.1 = ok;
        ok
    } {
        return Ok(false);
    }
    let write_line = |index: usize, verdict: &SubmissionVerdict| {
        service.stats.batch_records.fetch_add(1, Ordering::Relaxed);
        let mut line = String::with_capacity(256);
        yamlkit::json::write_json(
            &ymap! {
                "index" => i64::try_from(index).unwrap_or(0),
                "result" => verdict_to_yaml(verdict),
            },
            &mut line,
        );
        line.push('\n');
        let mut guard = writer.lock().expect("batch writer poisoned");
        if guard.1 && !guard.0.send(http::encode_chunk(&line)) {
            // Client went away mid-stream: stop writing, keep scoring
            // (verdicts still land in the shared memo).
            guard.1 = false;
        }
    };
    for (index, verdict) in replayed {
        write_line(index, &verdict);
    }
    let stats = score_submissions_stream(
        &submissions,
        service.workers,
        &service.memo,
        &service.refs,
        &service.gauges,
        |i, verdict| {
            let index = fresh_indices[i];
            write_line(index, &verdict);
            service.stats.record_judged(&verdict);
            service.store_response(response_key(&decoded[index]), verdict);
        },
    );
    let mut guard = writer.lock().expect("batch writer poisoned");
    if !guard.1 {
        return Ok(false);
    }
    let summary = yamlkit::json::to_json(&ymap! {
        "done" => i64::try_from(decoded.len()).unwrap_or(0),
        "executed" => i64::try_from(stats.executed).unwrap_or(0),
        "cache_hits" => i64::try_from(stats.cache_hits + replayed_count).unwrap_or(0),
    });
    let mut tail = http::encode_chunk(&(summary + "\n"));
    tail.extend_from_slice(http::CHUNK_STREAM_END);
    Ok(guard.0.send(tail) && request.keep_alive)
}

/// Whether a request must be handled on a worker thread (scoring work)
/// rather than inline on the event loop (corpus/stats lookups, typed
/// errors — all sub-millisecond).
pub fn needs_worker(request: &Request) -> bool {
    request.method() == "POST" && matches!(request.path(), "/v1/evaluate" | "/v1/batch")
}

/// Routes one request and queues the response into `sink`. Returns
/// whether the connection may serve another request.
///
/// Wraps the dispatch with the serving-layer observability: per-endpoint
/// request counters and latency histograms, byte accounting, an
/// `http_request` trace span, and the `x-request-id` echo.
pub fn handle<S: ResponseSink>(service: &Service, request: &Request, sink: &mut S) -> bool {
    let started = Instant::now();
    let m = &service.metrics;
    let endpoint = endpoint_index(request.path());
    m.requests_total[endpoint].inc();
    m.bytes_in.add(request.wire_len() as u64);
    let id = request_id(request);
    let trace = id.map_or_else(obs::TraceId::new, obs::TraceId::from_label);
    let mut span = obs::Span::start("http_request", trace);
    if span.is_recording() {
        span.tag("endpoint", ENDPOINTS[endpoint]);
        span.tag("method", request.method().to_owned());
        if let Some(id) = id {
            span.tag("request_id", id.to_owned());
        }
    }
    let mut counting = CountingSink {
        inner: sink,
        bytes_out: &m.bytes_out,
    };
    let keep = dispatch(service, request, &mut counting, &mut span);
    m.request_us[endpoint].record(started.elapsed());
    keep
}

/// A [`ResponseSink`] wrapper that accumulates
/// `http_bytes_total{direction="out"}` for every framed byte it forwards.
struct CountingSink<'a, S: ResponseSink> {
    inner: &'a mut S,
    bytes_out: &'a obs::Counter,
}

impl<S: ResponseSink> ResponseSink for CountingSink<'_, S> {
    fn send(&mut self, bytes: Vec<u8>) -> bool {
        self.bytes_out.add(bytes.len() as u64);
        self.inner.send(bytes)
    }
}

/// The routing core behind [`handle`].
fn dispatch<S: ResponseSink>(
    service: &Service,
    request: &Request,
    sink: &mut S,
    span: &mut obs::Span<'static>,
) -> bool {
    let echo: Vec<(&str, &str)> = request_id(request)
        .map(|v| ("x-request-id", v))
        .into_iter()
        .collect();
    service.stats.requests.fetch_add(1, Ordering::Relaxed);
    let outcome: Result<Option<(&'static str, String)>, ApiError> =
        match (request.method(), request.path()) {
            ("GET", "/v1/problems") => {
                service
                    .stats
                    .problems_requests
                    .fetch_add(1, Ordering::Relaxed);
                Ok(Some(("application/json", problems_body(service))))
            }
            ("GET", "/v1/stats") => {
                service.stats.stats_requests.fetch_add(1, Ordering::Relaxed);
                Ok(Some(("application/json", stats_body(service))))
            }
            ("GET", "/v1/metrics") => {
                service
                    .stats
                    .metrics_requests
                    .fetch_add(1, Ordering::Relaxed);
                Ok(Some((obs::expo::CONTENT_TYPE, metrics_body(service))))
            }
            ("POST", "/v1/evaluate") => {
                service
                    .stats
                    .evaluate_requests
                    .fetch_add(1, Ordering::Relaxed);
                evaluate_body(service, request).map(|body| Some(("application/json", body)))
            }
            ("POST", "/v1/batch") => {
                service.stats.batch_requests.fetch_add(1, Ordering::Relaxed);
                match batch_stream(service, request, sink, &echo) {
                    Ok(keep) => {
                        if span.is_recording() {
                            span.tag("status", "200");
                        }
                        return keep && request.keep_alive;
                    }
                    Err(e) => Err(e),
                }
            }
            (
                method,
                "/v1/problems" | "/v1/stats" | "/v1/metrics" | "/v1/evaluate" | "/v1/batch",
            ) => Err(ApiError {
                status: 405,
                code: "method_not_allowed",
                message: format!("{method} is not supported on {}", request.path()),
            }),
            (_, path) => Err(ApiError {
                status: 404,
                code: "not_found",
                message: format!("no such endpoint {path:?}"),
            }),
        };
    match outcome {
        Ok(Some((content_type, body))) => {
            if span.is_recording() {
                span.tag("status", "200");
            }
            let sent = sink.send(http::encode_response_with(
                200,
                content_type,
                &body,
                request.keep_alive,
                &echo,
            ));
            sent && request.keep_alive
        }
        Ok(None) => request.keep_alive,
        Err(e) => {
            if span.is_recording() {
                span.tag("status", e.status.to_string());
            }
            service.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            let sent = sink.send(http::encode_response_with(
                e.status,
                "application/json",
                &e.body(),
                request.keep_alive,
                &echo,
            ));
            sent && request.keep_alive
        }
    }
}

/// The typed `413` body used when a request body exceeds
/// [`MAX_BODY_BYTES`].
pub fn oversized_body(declared: usize) -> String {
    ApiError {
        status: 413,
        code: "body_too_large",
        message: format!("declared body of {declared} bytes exceeds {MAX_BODY_BYTES}"),
    }
    .body()
}

/// The typed `400` body used when the request never parsed.
pub fn malformed_body(message: &str) -> String {
    ApiError::bad_request(format!("malformed request: {message}")).body()
}

/// The typed `411` body used when a request body arrives with
/// `transfer-encoding: chunked` instead of a `content-length`.
pub fn length_required_body() -> String {
    ApiError {
        status: 411,
        code: "length_required",
        message: "chunked request bodies are not accepted; send a content-length".into(),
    }
    .body()
}

/// The typed `408` body used when a started request stalls past the
/// read timeout — distinct from an idle keep-alive connection, which is
/// closed silently.
pub fn timeout_body() -> String {
    ApiError {
        status: 408,
        code: "request_timeout",
        message: "request started but did not complete within the read timeout".into(),
    }
    .body()
}

/// The typed `503` body used when the accept queue is full.
pub fn busy_body() -> String {
    ApiError {
        status: 503,
        code: "server_busy",
        message: "accept queue full; retry".into(),
    }
    .body()
}
