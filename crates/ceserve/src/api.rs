//! The JSON API: routing, body decoding, response encoding, and the
//! service state shared by every worker.
//!
//! The wire format is produced by [`yamlkit::json::to_json`] and decoded
//! through the YAML parser (JSON is a YAML subset), so requests and
//! responses get the exact parser guarantees the benchmark itself runs
//! on — floats stay floats, quoted number-lookalikes stay strings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cedataset::{Dataset, Variant};
use cescore::RefCache;
use cloudeval_core::harness::{
    score_submission_doc, score_submissions_stream, StageGauges, Submission, SubmissionVerdict,
};
use evalcluster::memo::ScoreMemo;
use llmsim::extract_yaml;
use substrate::taxonomy::Bucket;
use yamlkit::{ymap, PreparedDoc, Yaml};

use crate::http::{self, Request, MAX_BODY_BYTES};

/// Where framed response bytes go.
///
/// The event loop handles cheap requests inline with a [`BufSink`]
/// (bytes land straight in the connection's output buffer); worker
/// threads handle scoring requests with a completion-channel sink that
/// re-arms the connection for writing. Either way the handler never
/// touches a socket, so a slow reader can never wedge the thread that
/// computes responses.
pub trait ResponseSink: Send {
    /// Queues framed bytes toward the client. `false` means the client
    /// is gone — streaming handlers stop writing (but may keep scoring;
    /// verdicts still land in the shared memo).
    fn send(&mut self, bytes: Vec<u8>) -> bool;
}

/// A [`ResponseSink`] over a plain output buffer (the inline fast path).
pub struct BufSink<'a>(pub &'a mut Vec<u8>);

impl ResponseSink for BufSink<'_> {
    fn send(&mut self, bytes: Vec<u8>) -> bool {
        self.0.extend_from_slice(&bytes);
        true
    }
}

/// Most items accepted in one `/v1/batch` request.
pub const MAX_BATCH_ITEMS: usize = 4096;

/// Most entries held in the in-process response cache before it resets.
const MAX_RESPONSE_CACHE: usize = 65_536;

/// Wire label of a variant (`original` / `simplified` / `translated`).
pub fn variant_wire(variant: Variant) -> &'static str {
    match variant {
        Variant::Original => "original",
        Variant::Simplified => "simplified",
        Variant::Translated => "translated",
    }
}

/// Parses a wire variant label.
pub fn parse_variant(label: &str) -> Option<Variant> {
    match label {
        "original" => Some(Variant::Original),
        "simplified" => Some(Variant::Simplified),
        "translated" => Some(Variant::Translated),
        _ => None,
    }
}

/// Request counters, gauges and timing shared across workers.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// All requests answered (any status).
    pub requests: AtomicUsize,
    /// `GET /v1/problems` requests.
    pub problems_requests: AtomicUsize,
    /// `POST /v1/evaluate` requests.
    pub evaluate_requests: AtomicUsize,
    /// `POST /v1/batch` requests.
    pub batch_requests: AtomicUsize,
    /// `GET /v1/stats` requests.
    pub stats_requests: AtomicUsize,
    /// Requests answered with a 4xx error.
    pub client_errors: AtomicUsize,
    /// Individual records streamed through `/v1/batch`.
    pub batch_records: AtomicUsize,
    /// Connections waiting in the bounded accept queue.
    pub queue_depth: AtomicUsize,
    /// Connections rejected with `503` because the queue was full.
    pub rejected_busy: AtomicUsize,
    /// Connections currently held by workers.
    pub connections: AtomicUsize,
    /// Workers currently processing a request.
    pub busy_workers: AtomicUsize,
    /// Requests answered from the full-verdict response cache (no
    /// extraction, scoring or substrate work at all).
    pub response_cache_hits: AtomicUsize,
    /// Deployment failures among freshly judged submissions, bucketed by
    /// the error taxonomy (indexed by [`Bucket::index`]). Cache replays
    /// do not re-count.
    pub taxonomy_failures: [AtomicUsize; Bucket::ALL.len()],
}

impl ServiceStats {
    /// Folds one freshly judged verdict into the taxonomy counters. A
    /// failure whose verdict carries no diagnosis (a legacy memo entry)
    /// counts as `unknown`.
    pub fn record_judged(&self, verdict: &SubmissionVerdict) {
        if verdict.passed {
            return;
        }
        let bucket = verdict
            .failure_bucket
            .as_deref()
            .and_then(Bucket::from_label)
            .unwrap_or(Bucket::Unknown);
        self.taxonomy_failures[bucket.index()].fetch_add(1, Ordering::Relaxed);
    }
}

/// The process-wide benchmark service: the problem corpus, one shared
/// verdict memo, live statistics and stage gauges.
pub struct Service {
    dataset: Arc<Dataset>,
    index: HashMap<String, usize>,
    memo: Arc<ScoreMemo>,
    /// Full verdicts keyed by `(candidate, problem@variant)` content
    /// hash: a repeat submission of an already-judged candidate is
    /// answered without recomputing anything — the substrate memo makes
    /// repeats skip execution, this layer makes them skip scoring too.
    /// In-process only; across restarts the persisted [`ScoreMemo`]
    /// still guarantees no substrate re-execution.
    responses: Mutex<HashMap<(u64, u64), SubmissionVerdict>>,
    /// Prepared-reference cache: each problem's labeled reference is
    /// parsed once per process lifetime, no matter how many submissions
    /// it judges.
    refs: RefCache,
    gauges: StageGauges,
    stats: ServiceStats,
    workers: usize,
    started: Instant,
}

impl Service {
    /// Builds the service over a problem corpus. `workers` is the width
    /// used for `/v1/batch` stage pools (and mirrors the HTTP pool).
    pub fn new(dataset: Arc<Dataset>, memo: Arc<ScoreMemo>, workers: usize) -> Service {
        let index = dataset
            .problems()
            .iter()
            .enumerate()
            .map(|(i, p)| (p.id.clone(), i))
            .collect();
        Service {
            dataset,
            index,
            memo,
            responses: Mutex::new(HashMap::new()),
            refs: RefCache::new(),
            gauges: StageGauges::new(),
            stats: ServiceStats::default(),
            workers: workers.max(1),
            started: Instant::now(),
        }
    }

    /// The problem corpus this service judges against.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The shared verdict memo.
    pub fn memo(&self) -> &Arc<ScoreMemo> {
        &self.memo
    }

    /// Live statistics counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Looks a problem up by id.
    pub fn problem(&self, id: &str) -> Option<&cedataset::Problem> {
        self.index.get(id).map(|&i| &self.dataset.problems()[i])
    }

    /// Drops both caches (verdict memo and response cache) — the
    /// cold-cache reset the `serve_engine` benchmark measures against.
    pub fn clear_caches(&self) {
        self.memo.clear();
        self.responses
            .lock()
            .expect("response cache poisoned")
            .clear();
    }

    /// A cache-served copy of an already-judged submission, if any.
    fn cached_response(&self, key: (u64, u64)) -> Option<SubmissionVerdict> {
        let found = self
            .responses
            .lock()
            .expect("response cache poisoned")
            .get(&key)
            .cloned();
        if found.is_some() {
            self.stats
                .response_cache_hits
                .fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores a fresh verdict for replay. Bounded: the cache resets when
    /// it would outgrow [`MAX_RESPONSE_CACHE`].
    fn store_response(&self, key: (u64, u64), verdict: SubmissionVerdict) {
        let mut cache = self.responses.lock().expect("response cache poisoned");
        if cache.len() >= MAX_RESPONSE_CACHE {
            cache.clear();
        }
        cache.insert(key, verdict);
    }
}

/// The response-cache key for an item: **extracted** candidate content ×
/// problem × variant (the same content-addressing vocabulary as the
/// score memo — the candidate side is exactly the `PreparedDoc`'s
/// content hash, so two raw bodies that extract to the same YAML share
/// one cached verdict).
fn response_key(item: &EvalItem<'_>) -> (u64, u64) {
    (
        yamlkit::doc::content_hash(&item.extracted),
        yamlkit::doc::content_hash(&format!(
            "{}@{}",
            item.problem.id,
            variant_wire(item.variant)
        )),
    )
}

/// A typed client error: `(status, code, message)` rendered as
/// `{"error":{"code":...,"message":...}}`.
struct ApiError {
    status: u16,
    code: &'static str,
    message: String,
}

impl ApiError {
    fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            code: "bad_request",
            message: message.into(),
        }
    }

    fn unknown_problem(id: &str) -> ApiError {
        ApiError {
            status: 404,
            code: "unknown_problem",
            message: format!("no problem with id {id:?}"),
        }
    }

    fn body(&self) -> String {
        yamlkit::json::to_json(&ymap! {
            "error" => ymap! {
                "code" => self.code,
                "message" => self.message.clone(),
            },
        })
    }
}

/// Encodes one verdict as a wire object.
pub fn verdict_to_yaml(v: &SubmissionVerdict) -> Yaml {
    ymap! {
        "problem_id" => v.problem_id.clone(),
        "variant" => variant_wire(v.variant),
        "passed" => v.passed,
        "cached" => v.cached,
        "simulated_ms" => i64::try_from(v.simulated_ms).unwrap_or(i64::MAX),
        "answer_class" => format!("{:?}", v.answer_class),
        "failure_bucket" => v.failure_bucket.clone().map_or(Yaml::Null, Yaml::Str),
        "score_issue" => v.score_issue.clone().map_or(Yaml::Null, Yaml::Str),
        "scores" => ymap! {
            "bleu" => v.scores.bleu,
            "edit_distance" => v.scores.edit_distance,
            "exact_match" => v.scores.exact_match,
            "kv_exact" => v.scores.kv_exact,
            "kv_wildcard" => v.scores.kv_wildcard,
            "unit_test" => v.scores.unit_test,
        },
        "extracted" => v.extracted.clone(),
    }
}

/// One decoded `/v1/evaluate`-shaped item.
struct EvalItem<'s> {
    problem: &'s cedataset::Problem,
    variant: Variant,
    /// The raw candidate body, as submitted.
    candidate: String,
    /// §3.1 post-processed candidate (extraction is a cheap string scan,
    /// done once at decode so the response cache can be keyed on content
    /// before any parsing or scoring happens).
    extracted: String,
}

/// Decodes an item object (`{"problem_id", "candidate", "variant"?}`).
fn decode_item<'s>(service: &'s Service, value: &Yaml, at: &str) -> Result<EvalItem<'s>, ApiError> {
    let id = value
        .get("problem_id")
        .and_then(Yaml::as_str)
        .ok_or_else(|| ApiError::bad_request(format!("{at}: missing string \"problem_id\"")))?;
    let candidate = value
        .get("candidate")
        .and_then(Yaml::as_str)
        .ok_or_else(|| ApiError::bad_request(format!("{at}: missing string \"candidate\"")))?;
    let variant = match value.get("variant") {
        None | Some(Yaml::Null) => Variant::Original,
        Some(v) => v
            .as_str()
            .and_then(parse_variant)
            .ok_or_else(|| ApiError::bad_request(format!("{at}: bad \"variant\"")))?,
    };
    let problem = service
        .problem(id)
        .ok_or_else(|| ApiError::unknown_problem(id))?;
    Ok(EvalItem {
        problem,
        variant,
        candidate: candidate.to_owned(),
        extracted: extract_yaml(candidate),
    })
}

/// Parses a JSON request body through the YAML engine.
fn decode_body(body: &str) -> Result<Yaml, ApiError> {
    if body.trim().is_empty() {
        return Err(ApiError::bad_request("empty request body"));
    }
    yamlkit::parse_one(body)
        .map(|n| n.to_value())
        .map_err(|e| ApiError::bad_request(format!("body is not valid JSON/YAML: {e}")))
}

/// `GET /v1/problems`.
fn problems_body(service: &Service) -> String {
    let problems: Yaml = service
        .dataset
        .problems()
        .iter()
        .map(|p| {
            ymap! {
                "id" => p.id.clone(),
                "category" => p.category.label(),
                "application" => format!("{:?}", p.category.application()),
                "variants" => Variant::ALL.iter().map(|v| variant_wire(*v)).collect::<Yaml>(),
                "has_context" => p.has_context(),
                "reference_lines" => i64::try_from(p.reference_lines()).unwrap_or(0),
            }
        })
        .collect();
    yamlkit::json::to_json(&ymap! {
        "count" => i64::try_from(service.dataset.len()).unwrap_or(0),
        "problems" => problems,
    })
}

/// `GET /v1/stats`.
fn stats_body(service: &Service) -> String {
    let s = &service.stats;
    let memo = &service.memo;
    let (hits, misses) = (memo.hits(), memo.misses());
    let lookups = hits + misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };
    let count = |a: &AtomicUsize| i64::try_from(a.load(Ordering::Relaxed)).unwrap_or(0);
    let g = &service.gauges;
    yamlkit::json::to_json(&ymap! {
        "uptime_ms" => i64::try_from(service.started.elapsed().as_millis()).unwrap_or(i64::MAX),
        "workers" => i64::try_from(service.workers).unwrap_or(0),
        "requests" => ymap! {
            "total" => count(&s.requests),
            "problems" => count(&s.problems_requests),
            "evaluate" => count(&s.evaluate_requests),
            "batch" => count(&s.batch_requests),
            "stats" => count(&s.stats_requests),
            "errors_4xx" => count(&s.client_errors),
        },
        "connections" => ymap! {
            "active" => count(&s.connections),
            "accept_queue_depth" => count(&s.queue_depth),
            "rejected_busy" => count(&s.rejected_busy),
            "busy_workers" => count(&s.busy_workers),
        },
        "memo" => ymap! {
            "entries" => i64::try_from(memo.len()).unwrap_or(0),
            "hits" => i64::try_from(hits).unwrap_or(0),
            "misses" => i64::try_from(misses).unwrap_or(0),
            "hit_rate" => hit_rate,
        },
        "response_cache" => ymap! {
            "entries" => i64::try_from(
                service.responses.lock().expect("response cache poisoned").len()
            ).unwrap_or(0),
            "hits" => count(&s.response_cache_hits),
        },
        "stages" => ymap! {
            "extracting" => i64::try_from(g.extracting()).unwrap_or(0),
            "scoring" => i64::try_from(g.scoring()).unwrap_or(0),
            "executing" => i64::try_from(g.executing()).unwrap_or(0),
            "completed" => i64::try_from(g.completed()).unwrap_or(0),
        },
        "taxonomy" => Yaml::Map(
            Bucket::ALL
                .iter()
                .map(|b| (
                    b.label().to_string(),
                    Yaml::Int(count(&s.taxonomy_failures[b.index()])),
                ))
                .collect(),
        ),
        "batch_records" => count(&s.batch_records),
    })
}

/// `POST /v1/evaluate`.
fn evaluate_body(service: &Service, request: &Request) -> Result<String, ApiError> {
    let value = decode_body(request.body())?;
    let mut item = decode_item(service, &value, "body")?;
    let key = response_key(&item);
    if let Some(mut verdict) = service.cached_response(key) {
        verdict.cached = true;
        return Ok(yamlkit::json::to_json(&verdict_to_yaml(&verdict)));
    }
    // Cache miss: the candidate's one-and-only parse. The PreparedDoc
    // built here flows through static scoring and substrate execution.
    let doc = PreparedDoc::shared(std::mem::take(&mut item.extracted));
    let verdict = score_submission_doc(
        item.problem,
        item.variant,
        &doc,
        &service.memo,
        &service.refs,
    );
    service.stats.record_judged(&verdict);
    service.store_response(key, verdict.clone());
    Ok(yamlkit::json::to_json(&verdict_to_yaml(&verdict)))
}

/// `POST /v1/batch`: decodes every item up front (any invalid item fails
/// the whole request with a typed 400 before work starts), then streams
/// verdicts back in completion order as one JSON object per chunk.
fn batch_stream<S: ResponseSink>(
    service: &Service,
    request: &Request,
    sink: &mut S,
) -> Result<bool, ApiError> {
    let value = decode_body(request.body())?;
    let items = match value.get("items") {
        Some(Yaml::Seq(items)) => items,
        _ => return Err(ApiError::bad_request("missing array \"items\"")),
    };
    if items.len() > MAX_BATCH_ITEMS {
        return Err(ApiError::bad_request(format!(
            "too many items: {} > {MAX_BATCH_ITEMS}",
            items.len()
        )));
    }
    let decoded: Vec<EvalItem<'_>> = items
        .iter()
        .enumerate()
        .map(|(i, v)| decode_item(service, v, &format!("items[{i}]")))
        .collect::<Result<_, _>>()?;

    // Partition: items the response cache already answers stream out
    // immediately; only the rest enter the stage-graph.
    let mut replayed: Vec<(usize, SubmissionVerdict)> = Vec::new();
    let mut fresh_indices: Vec<usize> = Vec::new();
    let mut submissions: Vec<Submission<'_>> = Vec::new();
    for (index, item) in decoded.iter().enumerate() {
        match service.cached_response(response_key(item)) {
            Some(mut verdict) => {
                verdict.cached = true;
                replayed.push((index, verdict));
            }
            None => {
                fresh_indices.push(index);
                submissions.push(Submission {
                    problem: item.problem,
                    variant: item.variant,
                    raw: item.candidate.clone(),
                    // decode_item already ran §3.1; don't extract twice.
                    extracted: Some(item.extracted.clone()),
                });
            }
        }
    }
    let replayed_count = replayed.len();

    // From here on the status line is committed; a vanished client just
    // stops the stream (`alive` flips false and writes become no-ops).
    let head = http::encode_chunked_head(200, "application/x-ndjson", request.keep_alive);
    let writer = Mutex::new((sink, true));
    if !{
        let mut guard = writer.lock().expect("batch writer poisoned");
        let ok = guard.0.send(head);
        guard.1 = ok;
        ok
    } {
        return Ok(false);
    }
    let write_line = |index: usize, verdict: &SubmissionVerdict| {
        service.stats.batch_records.fetch_add(1, Ordering::Relaxed);
        let mut line = String::with_capacity(256);
        yamlkit::json::write_json(
            &ymap! {
                "index" => i64::try_from(index).unwrap_or(0),
                "result" => verdict_to_yaml(verdict),
            },
            &mut line,
        );
        line.push('\n');
        let mut guard = writer.lock().expect("batch writer poisoned");
        if guard.1 && !guard.0.send(http::encode_chunk(&line)) {
            // Client went away mid-stream: stop writing, keep scoring
            // (verdicts still land in the shared memo).
            guard.1 = false;
        }
    };
    for (index, verdict) in replayed {
        write_line(index, &verdict);
    }
    let stats = score_submissions_stream(
        &submissions,
        service.workers,
        &service.memo,
        &service.refs,
        &service.gauges,
        |i, verdict| {
            let index = fresh_indices[i];
            write_line(index, &verdict);
            service.stats.record_judged(&verdict);
            service.store_response(response_key(&decoded[index]), verdict);
        },
    );
    let mut guard = writer.lock().expect("batch writer poisoned");
    if !guard.1 {
        return Ok(false);
    }
    let summary = yamlkit::json::to_json(&ymap! {
        "done" => i64::try_from(decoded.len()).unwrap_or(0),
        "executed" => i64::try_from(stats.executed).unwrap_or(0),
        "cache_hits" => i64::try_from(stats.cache_hits + replayed_count).unwrap_or(0),
    });
    let mut tail = http::encode_chunk(&(summary + "\n"));
    tail.extend_from_slice(http::CHUNK_STREAM_END);
    Ok(guard.0.send(tail) && request.keep_alive)
}

/// Whether a request must be handled on a worker thread (scoring work)
/// rather than inline on the event loop (corpus/stats lookups, typed
/// errors — all sub-millisecond).
pub fn needs_worker(request: &Request) -> bool {
    request.method() == "POST" && matches!(request.path(), "/v1/evaluate" | "/v1/batch")
}

/// Routes one request and queues the response into `sink`. Returns
/// whether the connection may serve another request.
pub fn handle<S: ResponseSink>(service: &Service, request: &Request, sink: &mut S) -> bool {
    service.stats.requests.fetch_add(1, Ordering::Relaxed);
    let outcome: Result<Option<String>, ApiError> = match (request.method(), request.path()) {
        ("GET", "/v1/problems") => {
            service
                .stats
                .problems_requests
                .fetch_add(1, Ordering::Relaxed);
            Ok(Some(problems_body(service)))
        }
        ("GET", "/v1/stats") => {
            service.stats.stats_requests.fetch_add(1, Ordering::Relaxed);
            Ok(Some(stats_body(service)))
        }
        ("POST", "/v1/evaluate") => {
            service
                .stats
                .evaluate_requests
                .fetch_add(1, Ordering::Relaxed);
            evaluate_body(service, request).map(Some)
        }
        ("POST", "/v1/batch") => {
            service.stats.batch_requests.fetch_add(1, Ordering::Relaxed);
            match batch_stream(service, request, sink) {
                Ok(keep) => return keep && request.keep_alive,
                Err(e) => Err(e),
            }
        }
        (method, "/v1/problems" | "/v1/stats" | "/v1/evaluate" | "/v1/batch") => Err(ApiError {
            status: 405,
            code: "method_not_allowed",
            message: format!("{method} is not supported on {}", request.path()),
        }),
        (_, path) => Err(ApiError {
            status: 404,
            code: "not_found",
            message: format!("no such endpoint {path:?}"),
        }),
    };
    match outcome {
        Ok(Some(body)) => {
            let sent = sink.send(http::encode_response(
                200,
                "application/json",
                &body,
                request.keep_alive,
            ));
            sent && request.keep_alive
        }
        Ok(None) => request.keep_alive,
        Err(e) => {
            service.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            let sent = sink.send(http::encode_response(
                e.status,
                "application/json",
                &e.body(),
                request.keep_alive,
            ));
            sent && request.keep_alive
        }
    }
}

/// The typed `413` body used when a request body exceeds
/// [`MAX_BODY_BYTES`].
pub fn oversized_body(declared: usize) -> String {
    ApiError {
        status: 413,
        code: "body_too_large",
        message: format!("declared body of {declared} bytes exceeds {MAX_BODY_BYTES}"),
    }
    .body()
}

/// The typed `400` body used when the request never parsed.
pub fn malformed_body(message: &str) -> String {
    ApiError::bad_request(format!("malformed request: {message}")).body()
}

/// The typed `411` body used when a request body arrives with
/// `transfer-encoding: chunked` instead of a `content-length`.
pub fn length_required_body() -> String {
    ApiError {
        status: 411,
        code: "length_required",
        message: "chunked request bodies are not accepted; send a content-length".into(),
    }
    .body()
}

/// The typed `408` body used when a started request stalls past the
/// read timeout — distinct from an idle keep-alive connection, which is
/// closed silently.
pub fn timeout_body() -> String {
    ApiError {
        status: 408,
        code: "request_timeout",
        message: "request started but did not complete within the read timeout".into(),
    }
    .body()
}

/// The typed `503` body used when the accept queue is full.
pub fn busy_body() -> String {
    ApiError {
        status: 503,
        code: "server_busy",
        message: "accept queue full; retry".into(),
    }
    .body()
}
