//! The multithreaded server: a polling acceptor feeding a **bounded**
//! accept queue, drained by a worker pool over `std::thread::scope` (the
//! same scoped-pool discipline as `evalcluster::shard`). Each worker owns
//! one connection at a time and serves keep-alive requests until the
//! client closes, the idle timeout fires, or shutdown is requested.
//!
//! Backpressure: the accept queue holds at most
//! [`ServerConfig::accept_queue`] connections; when it is full new
//! connections are answered `503 server_busy` immediately instead of
//! piling up unbounded.
//!
//! Persistence: when [`ServerConfig::memo_path`] is set, the verdict
//! store is loaded before the first request and saved as JSONL on
//! shutdown, so repeat submissions across restarts are served from cache
//! without touching a substrate.

use std::io;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cedataset::Dataset;
use cloudeval_core::harness::default_workers;
use evalcluster::memo::{self, ScoreMemo};

use crate::api::{self, Service};
use crate::http::{self, RequestError};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (HTTP pool width; also the `/v1/batch` stage
    /// width). Defaults to the hardware width, clamped like
    /// [`default_workers`].
    pub workers: usize,
    /// Bounded accept-queue depth; connections beyond it get `503`.
    pub accept_queue: usize,
    /// When set, the verdict store is loaded from (and saved to) this
    /// JSONL file.
    pub memo_path: Option<PathBuf>,
    /// Idle keep-alive timeout per connection; also bounds how long
    /// shutdown waits on a quiet connection.
    pub read_timeout: Duration,
    /// Per-write timeout. A `/v1/batch` client that stops reading
    /// mid-stream would otherwise block a chunk write forever once the
    /// TCP send buffer fills, wedging the worker and back-pressuring the
    /// whole stage-graph; with the timeout the write errors and the
    /// stream is dropped (scoring continues — verdicts still land in the
    /// shared memo).
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: default_workers(),
            accept_queue: 64,
            memo_path: None,
            read_timeout: Duration::from_millis(1000),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// A running server; dropping (or calling [`ServerHandle::shutdown`])
/// stops it and joins every thread.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    owner: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The bound address (query it after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (stats, memo, dataset).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Requests shutdown, waits for every worker to finish, and persists
    /// the memo when a path was configured.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.owner.take() {
            Some(owner) => owner
                .join()
                .map_err(|_| io::Error::other("server owner thread panicked"))?,
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(owner) = self.owner.take() {
            let _ = owner.join();
        }
    }
}

/// Binds and starts a server over the given problem corpus.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
///
/// let dataset = Arc::new(cedataset::Dataset::generate());
/// let handle = ceserve::spawn("127.0.0.1:0", dataset, ceserve::ServerConfig::default()).unwrap();
/// assert_ne!(handle.addr().port(), 0);
/// handle.shutdown().unwrap();
/// ```
pub fn spawn(
    addr: impl ToSocketAddrs,
    dataset: Arc<Dataset>,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let memo = Arc::new(ScoreMemo::new());
    if let Some(path) = &config.memo_path {
        if path.exists() {
            memo::load_into(&memo, path)?;
        }
    }
    let service = Arc::new(Service::new(dataset, Arc::clone(&memo), config.workers));
    let shutdown = Arc::new(AtomicBool::new(false));

    let owner = {
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        let config = config.clone();
        std::thread::Builder::new()
            .name("ceserve-owner".into())
            .spawn(move || run(listener, &service, &shutdown, &config))?
    };
    Ok(ServerHandle {
        addr,
        service,
        shutdown,
        owner: Some(owner),
    })
}

/// The owner thread: scoped worker pool + polling accept loop.
fn run(
    listener: TcpListener,
    service: &Service,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) -> io::Result<()> {
    let workers = config.workers.max(1);
    let (conn_tx, conn_rx) = sync_channel::<TcpStream>(config.accept_queue.max(1));
    let conn_rx = Mutex::new(conn_rx);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let conn_rx = &conn_rx;
            scope.spawn(move || worker_loop(service, conn_rx, shutdown));
        }
        // Accept loop on the owner thread. Nonblocking + short sleeps so
        // the shutdown flag is honored promptly without a wakeup socket.
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_read_timeout(Some(config.read_timeout));
                    let _ = stream.set_write_timeout(Some(config.write_timeout));
                    let _ = stream.set_nodelay(true);
                    // Count before handing over: a fast worker may dequeue
                    // (and decrement) before try_send even returns.
                    service.stats().queue_depth.fetch_add(1, Ordering::Relaxed);
                    match conn_tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(mut stream)) => {
                            // Bounded queue full: shed load with a typed 503.
                            service.stats().queue_depth.fetch_sub(1, Ordering::Relaxed);
                            service
                                .stats()
                                .rejected_busy
                                .fetch_add(1, Ordering::Relaxed);
                            let _ = http::write_response(
                                &mut stream,
                                503,
                                "application/json",
                                &api::busy_body(),
                                false,
                            );
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            service.stats().queue_depth.fetch_sub(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Dropping the sender disconnects the queue; workers drain what
        // was already accepted and exit.
        drop(conn_tx);
        Ok(())
    })?;
    if let Some(path) = &config.memo_path {
        memo::save(service.memo(), path)?;
    }
    Ok(())
}

/// One worker: pull connections off the bounded queue and serve them.
///
/// The dequeue blocks in `recv_timeout` **while holding the lock** — by
/// design: exactly one idle worker waits on the channel, the rest block
/// on the mutex (no polling), and the lock is released before the
/// connection is served. On shutdown the acceptor drops the sender, the
/// channel drains its remaining streams and then disconnects, and every
/// worker exits.
fn worker_loop(service: &Service, conn_rx: &Mutex<Receiver<TcpStream>>, shutdown: &AtomicBool) {
    use std::sync::mpsc::RecvTimeoutError;
    loop {
        let received = conn_rx
            .lock()
            .expect("accept queue poisoned")
            .recv_timeout(Duration::from_millis(50));
        let stream = match received {
            Ok(stream) => stream,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        service.stats().queue_depth.fetch_sub(1, Ordering::Relaxed);
        service.stats().connections.fetch_add(1, Ordering::Relaxed);
        serve_connection(service, stream, shutdown);
        service.stats().connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Serves keep-alive requests on one connection until it closes.
fn serve_connection(service: &Service, stream: TcpStream, shutdown: &AtomicBool) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = stream;
    let mut reader = BufReader::new(read_half);
    while !shutdown.load(Ordering::SeqCst) {
        match http::parse_request(&mut reader) {
            Ok(request) => {
                service.stats().busy_workers.fetch_add(1, Ordering::Relaxed);
                let keep = api::handle(service, &request, &mut write_half);
                service.stats().busy_workers.fetch_sub(1, Ordering::Relaxed);
                match keep {
                    Ok(true) => {}
                    Ok(false) | Err(_) => break,
                }
            }
            Err(RequestError::Closed) | Err(RequestError::Timeout) | Err(RequestError::Io(_)) => {
                break;
            }
            Err(RequestError::Malformed(message)) => {
                service.stats().requests.fetch_add(1, Ordering::Relaxed);
                service
                    .stats()
                    .client_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = http::write_response(
                    &mut write_half,
                    400,
                    "application/json",
                    &api::malformed_body(&message),
                    false,
                );
                break;
            }
            Err(RequestError::BodyTooLarge(declared)) => {
                service.stats().requests.fetch_add(1, Ordering::Relaxed);
                service
                    .stats()
                    .client_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = http::write_response(
                    &mut write_half,
                    413,
                    "application/json",
                    &api::oversized_body(declared),
                    false,
                );
                break;
            }
        }
    }
}
