//! The event-driven serving core: one owner thread runs a nonblocking,
//! readiness-driven **event loop** (accept + parse + flush over the
//! [`crate::poll`] readiness shim and a generation-tagged connection slab),
//! and a fixed scoring **worker pool** (`std::thread::scope`, the same
//! scoped-pool discipline as `evalcluster::shard`) handles the slow
//! endpoints, re-arming connections through a completion channel.
//! Thread count is `workers + 1` regardless of how many connections are
//! open — thousands of idle keep-alive connections cost slab slots, not
//! threads.
//!
//! Life of a request:
//!
//! 1. the event loop accepts the connection nonblocking and parks it in
//!    the slab (beyond [`ServerConfig::max_connections`] it sheds with a
//!    typed `503`);
//! 2. socket bytes are drained into the connection's incremental
//!    [`RequestParser`](crate::http::RequestParser) as they arrive —
//!    pipelined or one byte at a time, no thread ever blocks on a read;
//!    draining stops while more than [`MAX_IN_BUFFER`] bytes sit
//!    unparsed, so a client that pipelines faster than its requests are
//!    served is bounded by TCP backpressure, not by server heap;
//! 3. a completed `GET` (problems/stats) or any protocol error is
//!    answered inline — stats stay responsive even when every worker is
//!    busy scoring; a completed `POST` (evaluate/batch) is dispatched to
//!    the worker pool over a **bounded** job queue (full ⇒ typed `503`);
//! 4. workers push framed response bytes (whole responses, or chunk by
//!    chunk for `/v1/batch`) through the completion channel; the event
//!    loop buffers them per connection and flushes as the socket
//!    accepts — a slow reader stalls only its own buffer (and is dropped
//!    past [`MAX_OUT_BUFFER`]; inline responses instead pause parsing at
//!    the same bound until the backlog drains), never a thread;
//! 5. timeouts are tiered: an *idle* keep-alive connection is closed
//!    silently, a *started* request that stalls mid-head or mid-body is
//!    answered `408 Request Timeout`, and a write-side stall past
//!    [`ServerConfig::write_timeout`] drops the connection.
//!
//! Persistence: when [`ServerConfig::memo_path`] is set, the verdict
//! store is loaded before the first request and saved as JSONL on
//! shutdown, so repeat submissions across restarts are served from cache
//! without touching a substrate.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cedataset::Dataset;
use cloudeval_core::harness::default_workers;
use evalcluster::memo::{self, ScoreMemo};

use crate::api::{self, ResponseSink, Service};
use crate::http::{self, RequestError};
use crate::poll::{self, ReadStep, Slab, Token, WriteStep};

/// Per-read scratch size; also the per-connection fairness cap on how
/// many bytes one tick will drain from a single socket.
const READ_CHUNK: usize = 16 * 1024;

/// Largest buffered-but-unflushed response backlog per connection. A
/// `/v1/batch` client that stops reading mid-stream accumulates chunks
/// here instead of wedging a worker; past this bound the connection is
/// dropped (scoring continues — verdicts still land in the shared memo).
/// The inline path enforces the same bound by *pausing* rather than
/// dropping: the parse loop stops routing pipelined requests while the
/// backlog is at the cap and resumes as the socket drains it (one
/// response may overshoot the cap, never more).
pub const MAX_OUT_BUFFER: usize = 8 << 20;

/// Largest parser-buffered request backlog per connection: one maximal
/// request (head + body) plus a pipeline allowance. The read phase stops
/// draining the socket once this much is buffered unparsed — because a
/// request is at a worker, or because [`MAX_OUT_BUFFER`] paused the
/// parse loop — so a client that pipelines at line rate is bounded by
/// TCP backpressure (as the old blocking design was), not by the
/// server's heap. One `READ_CHUNK` may overshoot the bound, never
/// more.
pub const MAX_IN_BUFFER: usize = http::MAX_BODY_BYTES + http::MAX_HEADER_BYTES + READ_CHUNK;

/// Idle-tick sleep bounds: the loop parks briefly when a tick made no
/// progress, backing off toward the max while the server stays quiet.
const TICK_MIN: Duration = Duration::from_micros(200);
const TICK_MAX: Duration = Duration::from_millis(2);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (scoring pool width; also the `/v1/batch` stage
    /// width). Defaults to the hardware width, clamped like
    /// [`default_workers`]. The process runs exactly `workers + 1`
    /// server threads no matter how many connections are open.
    pub workers: usize,
    /// Bounded dispatch-queue depth: scoring requests parsed but not yet
    /// claimed by a worker. When it is full new scoring requests get a
    /// typed `503` instead of queueing unboundedly.
    pub accept_queue: usize,
    /// Most simultaneously-open connections; beyond it new connections
    /// are shed with a typed `503`.
    pub max_connections: usize,
    /// When set, the verdict store is loaded from (and saved to) this
    /// JSONL file.
    pub memo_path: Option<PathBuf>,
    /// Read deadline, applied in two tiers: an idle keep-alive
    /// connection is closed silently after this long, while a
    /// *started* request (head or body partially arrived) is answered
    /// `408 Request Timeout`.
    pub read_timeout: Duration,
    /// Write-stall deadline. A client that stops reading while response
    /// bytes are pending is dropped once the socket accepts nothing for
    /// this long.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: default_workers(),
            accept_queue: 64,
            max_connections: 4096,
            memo_path: None,
            read_timeout: Duration::from_millis(1000),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// A running server; dropping (or calling [`ServerHandle::shutdown`])
/// stops it and joins every thread.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    owner: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The bound address (query it after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (stats, memo, dataset).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Requests shutdown, waits for every worker to finish, and persists
    /// the memo when a path was configured.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.owner.take() {
            Some(owner) => owner
                .join()
                .map_err(|_| io::Error::other("server owner thread panicked"))?,
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(owner) = self.owner.take() {
            let _ = owner.join();
        }
    }
}

/// Binds and starts a server over the given problem corpus.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
///
/// let dataset = Arc::new(cedataset::Dataset::generate());
/// let handle = ceserve::spawn("127.0.0.1:0", dataset, ceserve::ServerConfig::default()).unwrap();
/// assert_ne!(handle.addr().port(), 0);
/// handle.shutdown().unwrap();
/// ```
pub fn spawn(
    addr: impl ToSocketAddrs,
    dataset: Arc<Dataset>,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let memo = Arc::new(ScoreMemo::new());
    if let Some(path) = &config.memo_path {
        if path.exists() {
            memo::load_into(&memo, path)?;
        }
    }
    let service = Arc::new(Service::new(dataset, Arc::clone(&memo), config.workers));
    let shutdown = Arc::new(AtomicBool::new(false));

    let owner = {
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        let config = config.clone();
        std::thread::Builder::new()
            .name("ceserve-owner".into())
            .spawn(move || run(listener, &service, &shutdown, &config))?
    };
    Ok(ServerHandle {
        addr,
        service,
        shutdown,
        owner: Some(owner),
    })
}

/// A scoring request dispatched from the event loop to the worker pool.
struct Job {
    token: Token,
    request: http::Request,
    /// When the event loop enqueued it, for `http_phase_us{phase="queue_wait"}`.
    queued_at: Instant,
}

/// What workers push back through the completion channel.
enum Completion {
    /// Framed response bytes for a connection (whole responses, or one
    /// chunk of a `/v1/batch` stream).
    Data(Token, Vec<u8>),
    /// The job finished; `bool` is whether the connection may serve
    /// another request.
    Done(Token, bool),
}

/// The worker-side [`ResponseSink`]: framed bytes ride the completion
/// channel back to the event loop, which re-arms the connection for
/// writing. A send error means the event loop is gone (shutdown) — the
/// sink goes dead and further writes are dropped.
struct CompletionSink<'a> {
    tx: &'a Sender<Completion>,
    token: Token,
    alive: bool,
}

impl ResponseSink for CompletionSink<'_> {
    fn send(&mut self, bytes: Vec<u8>) -> bool {
        if self.alive && self.tx.send(Completion::Data(self.token, bytes)).is_err() {
            self.alive = false;
        }
        self.alive
    }
}

/// The owner thread: scoped worker pool + the event loop.
fn run(
    listener: TcpListener,
    service: &Service,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) -> io::Result<()> {
    let workers = config.workers.max(1);
    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.accept_queue.max(1));
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let job_rx = Mutex::new(job_rx);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = &job_rx;
            let done_tx = done_tx.clone();
            scope.spawn(move || worker_loop(service, job_rx, done_tx));
        }
        drop(done_tx);
        let result = event_loop(&listener, service, shutdown, config, job_tx, done_rx);
        // `event_loop` dropped the job sender on exit; workers drain the
        // jobs already queued (decrementing the queue-depth gauge for
        // each — nothing leaks into `/v1/stats` phantom depth) and exit.
        result
    })?;
    if let Some(path) = &config.memo_path {
        memo::save(service.memo(), path)?;
    }
    Ok(())
}

/// One scoring worker: claim parsed requests off the bounded dispatch
/// queue, run the API handler with a completion-channel sink, report
/// done.
///
/// The claim blocks in `recv` **while holding the lock** — by design:
/// exactly one idle worker waits on the channel, the rest block on the
/// mutex (no polling). Workers exit when the event loop drops the
/// sender *and* the queue is drained, so a request that was queued at
/// shutdown is still accounted (gauge decremented) rather than leaked.
fn worker_loop(service: &Service, job_rx: &Mutex<Receiver<Job>>, done_tx: Sender<Completion>) {
    loop {
        let claimed = job_rx.lock().expect("dispatch queue poisoned").recv();
        let Ok(job) = claimed else { return };
        service.stats().queue_depth.fetch_sub(1, Ordering::Relaxed);
        service
            .metrics()
            .queue_wait_us
            .record(job.queued_at.elapsed());
        service.stats().busy_workers.fetch_add(1, Ordering::Relaxed);
        let mut sink = CompletionSink {
            tx: &done_tx,
            token: job.token,
            alive: true,
        };
        let handler_started = Instant::now();
        let keep = api::handle(service, &job.request, &mut sink);
        service
            .metrics()
            .handler_us
            .record(handler_started.elapsed());
        service.stats().busy_workers.fetch_sub(1, Ordering::Relaxed);
        let _ = done_tx.send(Completion::Done(job.token, keep));
    }
}

/// One connection's state in the slab.
struct Conn {
    stream: TcpStream,
    parser: http::RequestParser,
    /// Buffered response bytes not yet accepted by the socket…
    out: Vec<u8>,
    /// …up to this cursor, which have been.
    written: usize,
    /// A request is at a worker; responses for it are still arriving, so
    /// parsing of pipelined successors is paused (responses must leave
    /// in request order).
    awaiting: bool,
    /// Flush what is buffered, then close.
    close_after_flush: bool,
    /// The peer half-closed its write side: no more requests will
    /// arrive, finish the in-flight one and close.
    peer_closed: bool,
    /// Last moment bytes moved on this socket (either direction).
    last_activity: Instant,
    /// When the socket first refused pending writes, for the
    /// write-stall deadline.
    write_stalled_since: Option<Instant>,
    /// When the connection was accepted, for
    /// `http_phase_us{phase="accept_to_first_byte"}`.
    accepted: Instant,
    /// The first request byte has arrived (accept-to-first-byte has been
    /// recorded; it is a per-connection phase, not per-request).
    first_byte_seen: bool,
    /// When the in-flight request's first bytes arrived, for
    /// `http_phase_us{phase="assembly"}`. Taken when the request
    /// completes; pipelined successors parsed from the same tick's bytes
    /// contribute no sample.
    request_started: Option<Instant>,
    /// When the current response backlog first waited on the socket, for
    /// `http_phase_us{phase="write_drain"}`.
    drain_started: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            parser: http::RequestParser::new(),
            out: Vec::new(),
            written: 0,
            awaiting: false,
            close_after_flush: false,
            peer_closed: false,
            last_activity: now,
            write_stalled_since: None,
            accepted: now,
            first_byte_seen: false,
            request_started: None,
            drain_started: None,
        }
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.written
    }
}

/// The readiness-driven core: accepts, reads, parses, dispatches,
/// flushes — all nonblocking, all on one thread.
fn event_loop(
    listener: &TcpListener,
    service: &Service,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    job_tx: SyncSender<Job>,
    done_rx: Receiver<Completion>,
) -> io::Result<()> {
    let mut conns: Slab<Conn> = Slab::new();
    let mut idle_sleep = TICK_MIN;
    while !shutdown.load(Ordering::SeqCst) {
        let mut progress = false;
        let now = Instant::now();

        // Accept burst.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    progress = true;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if conns.len() >= config.max_connections.max(1) {
                        shed(service, stream);
                        continue;
                    }
                    service.stats().connections.fetch_add(1, Ordering::Relaxed);
                    conns.insert(Conn::new(stream, now));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    drain_conns(service, &mut conns);
                    return Err(e);
                }
            }
        }

        // Worker completions: buffer response bytes, re-arm connections.
        // Generation-tagged tokens make completions for connections that
        // died (or whose slot was recycled) harmless no-ops.
        while let Ok(completion) = done_rx.try_recv() {
            progress = true;
            match completion {
                Completion::Data(token, bytes) => {
                    let overflow = match conns.get_mut(token) {
                        Some(conn) => {
                            if conn.pending_out() + bytes.len() > MAX_OUT_BUFFER {
                                true
                            } else {
                                conn.out.extend_from_slice(&bytes);
                                false
                            }
                        }
                        None => false,
                    };
                    if overflow {
                        // Slow reader: drop the connection, let the
                        // stream's remaining chunks no-op on the stale
                        // token.
                        close_conn(service, &mut conns, token);
                    }
                }
                Completion::Done(token, keep) => {
                    if let Some(conn) = conns.get_mut(token) {
                        conn.awaiting = false;
                        if !keep {
                            conn.close_after_flush = true;
                        }
                    }
                }
            }
        }

        // Per-connection I/O scan (the "poll"): each live socket gets
        // one nonblocking read/parse/flush pass, plus deadline checks.
        for slot in 0..conns.slots() {
            let Some(token) = conns.token_at(slot) else {
                continue;
            };
            let conn = conns.get_mut(token).expect("token_at returned live token");
            match pump_conn(service, conn, token, &job_tx, now, config) {
                Ok(made_progress) => progress |= made_progress,
                Err(()) => close_conn(service, &mut conns, token),
            }
        }

        if progress {
            idle_sleep = TICK_MIN;
        } else {
            // Nothing moved: park briefly, backing off while quiet so an
            // idle server costs ~nothing and a busy one stays snappy.
            std::thread::sleep(idle_sleep);
            idle_sleep = (idle_sleep * 2).min(TICK_MAX);
        }
    }
    drain_conns(service, &mut conns);
    Ok(())
}

/// Removes a connection and keeps the gauge honest.
fn close_conn(service: &Service, conns: &mut Slab<Conn>, token: Token) {
    if conns.remove(token).is_some() {
        service.stats().connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Drops every remaining connection on loop exit (shutdown or accept
/// failure), decrementing the gauge for each.
fn drain_conns(service: &Service, conns: &mut Slab<Conn>) {
    for slot in 0..conns.slots() {
        if let Some(token) = conns.token_at(slot) {
            close_conn(service, conns, token);
        }
    }
}

/// One tick of one connection: drain readable bytes into the parser,
/// complete and route requests, flush pending writes, enforce deadlines.
/// `Err(())` means the connection is done (error, EOF, timeout) and must
/// be removed.
fn pump_conn(
    service: &Service,
    conn: &mut Conn,
    token: Token,
    job_tx: &SyncSender<Job>,
    now: Instant,
    config: &ServerConfig,
) -> Result<bool, ()> {
    let mut progress = false;

    // Read phase: drain what the socket has (bounded per tick for
    // fairness across connections, and gated on [`MAX_IN_BUFFER`] so a
    // paused parse loop — request at a worker, or response backlog at
    // the cap — cannot be exploited to buffer unbounded pipelined bytes;
    // the unread bytes stay in the kernel and TCP backpressure reaches
    // the client).
    if !conn.close_after_flush && !conn.peer_closed && conn.parser.buffered() < MAX_IN_BUFFER {
        let mut chunk = [0u8; READ_CHUNK];
        match poll::read_step(&mut conn.stream, &mut chunk) {
            Ok(ReadStep::Data(n)) => {
                if !conn.first_byte_seen {
                    conn.first_byte_seen = true;
                    service
                        .metrics()
                        .accept_to_first_byte_us
                        .record(now.duration_since(conn.accepted));
                }
                conn.request_started.get_or_insert(now);
                conn.parser.feed(&chunk[..n]);
                conn.last_activity = now;
                progress = true;
            }
            Ok(ReadStep::Closed) => {
                conn.peer_closed = true;
                progress = true;
            }
            Ok(ReadStep::NotReady) => {}
            Err(_) => return Err(()),
        }
    }

    // Parse-and-route phase. Paused while a request is at a worker so
    // pipelined responses leave in request order, and while the response
    // backlog is at [`MAX_OUT_BUFFER`] so a non-reading client that
    // pipelines cheap requests with large responses (inline writes skip
    // the completion channel and its overflow check) stalls instead of
    // growing `out` without bound; flushing below the cap resumes it.
    while !conn.awaiting && !conn.close_after_flush && conn.pending_out() < MAX_OUT_BUFFER {
        match conn.parser.try_next() {
            Ok(Some(request)) => {
                progress = true;
                if let Some(started) = conn.request_started.take() {
                    service
                        .metrics()
                        .assembly_us
                        .record(now.duration_since(started));
                }
                route(service, conn, token, request, job_tx);
            }
            Ok(None) => break,
            Err(error) => {
                progress = true;
                respond_parse_error(service, conn, &error);
                break;
            }
        }
    }

    // Flush phase.
    if conn.pending_out() > 0 {
        conn.drain_started.get_or_insert(now);
        loop {
            match poll::write_step(&mut conn.stream, &conn.out[conn.written..]) {
                Ok(WriteStep::Wrote(n)) => {
                    conn.written += n;
                    conn.last_activity = now;
                    conn.write_stalled_since = None;
                    progress = true;
                    if conn.written == conn.out.len() {
                        conn.out.clear();
                        conn.written = 0;
                        if let Some(started) = conn.drain_started.take() {
                            service
                                .metrics()
                                .write_drain_us
                                .record(now.duration_since(started));
                        }
                        break;
                    }
                }
                Ok(WriteStep::NotReady) => {
                    let stalled = conn.write_stalled_since.get_or_insert(now);
                    if now.duration_since(*stalled) > config.write_timeout {
                        return Err(());
                    }
                    break;
                }
                Err(_) => return Err(()),
            }
        }
    }

    let flushed = conn.pending_out() == 0;
    if conn.close_after_flush && flushed {
        return Err(());
    }
    // EOF: once nothing is in flight and nothing is pending, close.
    if conn.peer_closed && flushed && !conn.awaiting && !conn.parser.mid_request() {
        return Err(());
    }

    // Read deadlines (never while a worker owns the in-flight request —
    // scoring may legitimately take longer than the read timeout).
    if !conn.awaiting && !conn.close_after_flush {
        let idle_for = now.duration_since(conn.last_activity);
        if idle_for > config.read_timeout {
            if conn.parser.mid_request() {
                // A started request stalled mid-head or mid-body: that
                // is a client defect, answer it as one. (Silently
                // dropping, as the blocking server did, left the client
                // unable to tell a crash from its own half-sent
                // request.)
                service.stats().requests.fetch_add(1, Ordering::Relaxed);
                service
                    .stats()
                    .client_errors
                    .fetch_add(1, Ordering::Relaxed);
                // The request never completed, so scan the raw buffered
                // head for an x-request-id to echo: the timeout stays
                // attributable client-side.
                let id = api::scan_request_id(conn.parser.buffered_bytes());
                let extra: Vec<(&str, &str)> = id
                    .as_deref()
                    .map(|v| ("x-request-id", v))
                    .into_iter()
                    .collect();
                let bytes = http::encode_response_with(
                    408,
                    "application/json",
                    &api::timeout_body(),
                    false,
                    &extra,
                );
                service.metrics().bytes_out.add(bytes.len() as u64);
                conn.out.extend_from_slice(&bytes);
                conn.close_after_flush = true;
            } else if flushed {
                // Idle keep-alive connection: close silently.
                return Err(());
            }
        }
    }
    Ok(progress)
}

/// Routes one completed request: scoring `POST`s go to the worker pool,
/// everything else is answered inline into the connection's buffer.
fn route(
    service: &Service,
    conn: &mut Conn,
    token: Token,
    request: http::Request,
    job_tx: &SyncSender<Job>,
) {
    if api::needs_worker(&request) {
        service.stats().queue_depth.fetch_add(1, Ordering::Relaxed);
        match job_tx.try_send(Job {
            token,
            request,
            queued_at: Instant::now(),
        }) {
            Ok(()) => conn.awaiting = true,
            Err(TrySendError::Full(job)) => {
                // Bounded dispatch queue full: shed load with a typed 503.
                service.stats().queue_depth.fetch_sub(1, Ordering::Relaxed);
                service
                    .stats()
                    .rejected_busy
                    .fetch_add(1, Ordering::Relaxed);
                let extra: Vec<(&str, &str)> = api::request_id(&job.request)
                    .map(|v| ("x-request-id", v))
                    .into_iter()
                    .collect();
                let bytes = http::encode_response_with(
                    503,
                    "application/json",
                    &api::busy_body(),
                    false,
                    &extra,
                );
                service.metrics().bytes_out.add(bytes.len() as u64);
                conn.out.extend_from_slice(&bytes);
                conn.close_after_flush = true;
            }
            Err(TrySendError::Disconnected(_job)) => {
                service.stats().queue_depth.fetch_sub(1, Ordering::Relaxed);
                conn.close_after_flush = true;
            }
        }
    } else {
        let handler_started = Instant::now();
        let keep = {
            let mut sink = api::BufSink(&mut conn.out);
            api::handle(service, &request, &mut sink)
        };
        service
            .metrics()
            .handler_us
            .record(handler_started.elapsed());
        if !keep {
            conn.close_after_flush = true;
        }
    }
}

/// Answers a request-parse error with its typed status and marks the
/// connection for close (the byte stream is unsynchronized past the
/// error).
fn respond_parse_error(service: &Service, conn: &mut Conn, error: &RequestError) {
    let (status, body) = match error {
        RequestError::LengthRequired => (411, api::length_required_body()),
        RequestError::BodyTooLarge(declared) => (413, api::oversized_body(*declared)),
        RequestError::Malformed(message) => (400, api::malformed_body(message)),
        // The incremental parser does no I/O; these variants belong to
        // the client-side reader. Treat them as a dead connection.
        RequestError::Closed | RequestError::Timeout | RequestError::Io(_) => {
            conn.close_after_flush = true;
            return;
        }
    };
    service.stats().requests.fetch_add(1, Ordering::Relaxed);
    service
        .stats()
        .client_errors
        .fetch_add(1, Ordering::Relaxed);
    // No parsed request to consult; scan the raw bytes for the id echo.
    let id = api::scan_request_id(conn.parser.buffered_bytes());
    let extra: Vec<(&str, &str)> = id
        .as_deref()
        .map(|v| ("x-request-id", v))
        .into_iter()
        .collect();
    let bytes = http::encode_response_with(status, "application/json", &body, false, &extra);
    service.metrics().bytes_out.add(bytes.len() as u64);
    conn.out.extend_from_slice(&bytes);
    conn.close_after_flush = true;
}

/// Best-effort `503` to a connection shed at the `max_connections`
/// bound: nonblocking writes looped while they make progress (short
/// writes happen even for a ~150-byte response), abandoned at the first
/// refusal — the event loop never parks for a connection it is
/// rejecting.
fn shed(service: &Service, mut stream: TcpStream) {
    service
        .stats()
        .rejected_busy
        .fetch_add(1, Ordering::Relaxed);
    let id = scan_shed_request_id(&mut stream);
    let extra: Vec<(&str, &str)> = id
        .as_deref()
        .map(|v| ("x-request-id", v))
        .into_iter()
        .collect();
    let bytes =
        http::encode_response_with(503, "application/json", &api::busy_body(), false, &extra);
    let mut written = 0;
    while written < bytes.len() {
        match poll::write_step(&mut stream, &bytes[written..]) {
            Ok(WriteStep::Wrote(n)) => written += n,
            Ok(WriteStep::NotReady) | Err(_) => break,
        }
    }
    service.metrics().bytes_out.add(written as u64);
}

/// Best-effort `x-request-id` recovery on a connection being shed: the
/// client usually sent its request head before the accept, so a short
/// bounded read (≤ 25 ms, ≤ 4 KiB, stopping at end-of-head) recovers the
/// id for the `503` echo. The stall is a deliberate tradeoff — the loop
/// is already rejecting under overload, and a rejection the client can
/// correlate beats an anonymous one; the bound keeps it from becoming a
/// slowloris lever.
fn scan_shed_request_id(stream: &mut TcpStream) -> Option<String> {
    let deadline = Instant::now() + Duration::from_millis(25);
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match poll::read_step(stream, &mut chunk) {
            Ok(ReadStep::Data(n)) => {
                head.extend_from_slice(&chunk[..n]);
                if head.len() >= 4096 || head.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Ok(ReadStep::NotReady) => {
                if Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(ReadStep::Closed) | Err(_) => break,
        }
    }
    api::scan_request_id(&head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// A connected socket pair, the server side nonblocking (as the
    /// accept path would leave it) and the client side nonblocking so a
    /// single-threaded test can probe backpressure without deadlocking.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).unwrap();
        client.set_nonblocking(true).unwrap();
        (server_side, client)
    }

    fn test_service() -> Service {
        Service::new(Arc::new(Dataset::generate()), Arc::new(ScoreMemo::new()), 1)
    }

    /// Any generation-tagged token works for a connection pumped outside
    /// the event loop's slab — it is only consulted on worker dispatch.
    fn test_token() -> Token {
        Slab::<u8>::new().insert(0)
    }

    /// Regression (review): while a request is at a worker the parse
    /// loop is paused — the read phase must then stop feeding the
    /// parser at [`MAX_IN_BUFFER`] and leave further pipelined bytes to
    /// TCP backpressure, instead of buffering a line-rate client on the
    /// heap for as long as a slow `/v1/batch` scores.
    #[test]
    fn read_buffering_is_bounded_while_a_request_is_at_a_worker() {
        let (server_side, mut client) = socket_pair();
        let service = test_service();
        let (job_tx, _job_rx) = mpsc::sync_channel::<Job>(1);
        let config = ServerConfig::default();
        let token = test_token();
        let mut conn = Conn::new(server_side, Instant::now());
        conn.awaiting = true; // the in-flight request is "at a worker"

        let payload = vec![b'x'; 64 * 1024];
        let mut sent = 0usize;
        let mut stalled_rounds = 0;
        while sent < 2 * MAX_IN_BUFFER && stalled_rounds < 64 {
            match client.write(&payload) {
                Ok(n) => {
                    sent += n;
                    stalled_rounds = 0;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => stalled_rounds += 1,
                Err(e) => panic!("client write failed: {e}"),
            }
            for _ in 0..8 {
                pump_conn(&service, &mut conn, token, &job_tx, Instant::now(), &config)
                    .expect("connection stays alive");
            }
        }
        assert!(
            conn.parser.buffered() <= MAX_IN_BUFFER + READ_CHUNK,
            "parser buffered {} bytes with the parse loop paused (bound {MAX_IN_BUFFER})",
            conn.parser.buffered(),
        );
    }

    /// Regression (review): inline responses bypass the completion
    /// channel's overflow check — the parse loop itself must stop
    /// routing pipelined requests once [`MAX_OUT_BUFFER`] bytes are
    /// pending, so a non-reading client pipelining cheap `GET`s cannot
    /// grow the backlog without bound; and it must resume as the client
    /// drains, with nothing dropped.
    #[test]
    fn inline_response_backlog_is_capped_and_resumes() {
        let (server_side, mut client) = socket_pair();
        let service = test_service();
        let (job_tx, _job_rx) = mpsc::sync_channel::<Job>(1);
        let config = ServerConfig::default();
        let token = test_token();
        let mut conn = Conn::new(server_side, Instant::now());

        // Size one inline response, then pipeline enough of them that
        // even generous kernel socket buffering cannot mask an uncapped
        // backlog (responses drift a few bytes as counters grow, hence
        // the margins below).
        let request_bytes: &[u8] = b"GET /v1/stats HTTP/1.1\r\n\r\n";
        let one = {
            let mut out = Vec::new();
            let mut parser = http::RequestParser::new();
            parser.feed(request_bytes);
            let request = parser.try_next().unwrap().expect("complete request");
            api::handle(&service, &request, &mut api::BufSink(&mut out));
            out.len()
        };
        let total = 2 * MAX_OUT_BUFFER / one + 16;
        for _ in 0..total {
            conn.parser.feed(request_bytes);
        }

        // The client reads nothing: one pump must stop at the cap.
        pump_conn(&service, &mut conn, token, &job_tx, Instant::now(), &config)
            .expect("connection stays alive");
        assert!(
            conn.pending_out() <= MAX_OUT_BUFFER + one + 1024,
            "pending backlog {} with a non-reading client (cap {MAX_OUT_BUFFER})",
            conn.pending_out(),
        );

        // Drain from the client side: parsing resumes below the cap and
        // every pipelined request is eventually answered.
        let mut sink = vec![0u8; 1 << 20];
        let mut received = 0usize;
        let mut quiet = 0;
        while quiet < 50 {
            let moved = pump_conn(&service, &mut conn, token, &job_tx, Instant::now(), &config)
                .expect("connection stays alive");
            match client.read(&mut sink) {
                Ok(n) if n > 0 => {
                    received += n;
                    quiet = 0;
                }
                _ if moved => quiet = 0,
                _ => quiet += 1,
            }
        }
        assert_eq!(
            conn.parser.buffered(),
            0,
            "every pipelined request must parse"
        );
        assert_eq!(conn.pending_out(), 0, "the backlog must drain");
        assert!(
            received > MAX_OUT_BUFFER,
            "only {received} response bytes reached the client"
        );
    }
}
