//! HTTP/1.1 protocol-conformance torture suite for the event-driven
//! serving core: the hostile-client shapes the blocking server got wrong
//! (chunked bodies, smuggling-shaped content-lengths, mid-body stalls)
//! plus the scaling property the rewrite exists for — connection count
//! no longer buys threads, and a slow or flaky peer costs itself, not
//! the server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use cedataset::{Dataset, Variant};
use ceserve::loadgen::{self, LoadGenConfig, LoadItem};
use ceserve::{http, ServerConfig};
use yamlkit::Yaml;

fn boot(dataset: &Arc<Dataset>, config: ServerConfig) -> ceserve::ServerHandle {
    ceserve::spawn("127.0.0.1:0", Arc::clone(dataset), config).expect("bind ephemeral port")
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn error_code(response: &http::Response) -> String {
    yamlkit::parse_one(&response.body)
        .expect("error body parses")
        .to_value()
        .get_path(&["error", "code"])
        .and_then(Yaml::as_str)
        .unwrap_or("<none>")
        .to_owned()
}

/// A known-good `/v1/evaluate` request against the generated corpus.
fn evaluate_request() -> String {
    let body = r#"{"problem_id":"pod-000","candidate":"kind: Pod"}"#;
    format!(
        "POST /v1/evaluate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Reads until EOF, asserting the connection was closed by the server.
fn assert_closed(stream: &mut (impl Read + ?Sized)) {
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read to EOF");
    assert!(
        rest.is_empty(),
        "unexpected trailing bytes after close: {:?}",
        String::from_utf8_lossy(&rest)
    );
}

/// Bugfix regression: a `transfer-encoding: chunked` body used to be
/// silently ignored, leaving the chunk stream on the wire to desync the
/// next keep-alive request. It must be a typed `411 Length Required`
/// followed by a close.
#[test]
fn chunked_request_body_gets_411_and_close() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(&dataset, ServerConfig::default());
    let (mut stream, mut reader) = connect(server.addr());
    stream
        .write_all(
            b"POST /v1/evaluate HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n\
              5\r\nhello\r\n0\r\n\r\n",
        )
        .unwrap();
    let response = http::read_response(&mut reader).expect("411 response");
    assert_eq!(response.status, 411);
    assert_eq!(error_code(&response), "length_required");
    // The byte stream past the head is unsynchronized: the server must
    // close rather than misread the chunk framing as a next request.
    assert_closed(&mut reader);
    server.shutdown().expect("clean shutdown");
}

/// Bugfix regression: conflicting `content-length` values used to be
/// resolved first-wins — the classic request-smuggling shape. They must
/// be a hard 400.
#[test]
fn conflicting_content_lengths_are_rejected() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(&dataset, ServerConfig::default());

    // Repeated header with disagreeing values, crafted so first-wins
    // resolution reads a *valid* evaluate body and answers 200 — with a
    // smuggled byte left on the wire to desync the next keep-alive
    // request. The disagreement itself must be the hard 400.
    let body = r#"{"problem_id":"pod-000","candidate":"kind: Pod"}"#;
    let smuggled = format!(
        "POST /v1/evaluate HTTP/1.1\r\n\
         content-length: {}\r\ncontent-length: {}\r\n\r\n{body}X",
        body.len(),
        body.len() + 1
    );
    let (mut stream, mut reader) = connect(server.addr());
    stream.write_all(smuggled.as_bytes()).unwrap();
    let response = http::read_response(&mut reader).expect("400 response");
    assert_eq!(response.status, 400);
    assert_eq!(error_code(&response), "bad_request");
    assert_closed(&mut reader);

    // Comma-list disagreement inside one header value: same rejection.
    let (mut stream, mut reader) = connect(server.addr());
    stream
        .write_all(b"POST /v1/evaluate HTTP/1.1\r\ncontent-length: 4, 5\r\n\r\nabcd")
        .unwrap();
    let response = http::read_response(&mut reader).expect("400 response");
    assert_eq!(response.status, 400);
    server.shutdown().expect("clean shutdown");
}

/// RFC 9112 allows repeated `content-length` when every value agrees;
/// rejecting those would break well-meaning proxies.
#[test]
fn duplicate_equal_content_lengths_are_accepted() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(&dataset, ServerConfig::default());
    let body = r#"{"problem_id":"pod-000","candidate":"kind: Pod"}"#;
    let request = format!(
        "POST /v1/evaluate HTTP/1.1\r\ncontent-length: {len}\r\ncontent-length: {len}\r\n\r\n{body}",
        len = body.len()
    );
    let (mut stream, mut reader) = connect(server.addr());
    stream.write_all(request.as_bytes()).unwrap();
    let response = http::read_response(&mut reader).expect("200 response");
    assert_eq!(response.status, 200, "body: {}", response.body);
    server.shutdown().expect("clean shutdown");
}

/// Bugfix regression: a request that stalls mid-body used to be
/// silently dropped, indistinguishable from an idle keep-alive close.
/// It must be answered `408 Request Timeout`.
#[test]
fn mid_body_stall_gets_408() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(
        &dataset,
        ServerConfig {
            read_timeout: Duration::from_millis(150),
            ..ServerConfig::default()
        },
    );
    let (mut stream, mut reader) = connect(server.addr());
    // Declare 10 body bytes, deliver 3, go quiet.
    stream
        .write_all(b"POST /v1/evaluate HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc")
        .unwrap();
    let response = http::read_response(&mut reader).expect("408 response");
    assert_eq!(response.status, 408);
    assert_eq!(error_code(&response), "request_timeout");
    assert_closed(&mut reader);

    // Same tier for a stall mid-head.
    let (mut stream, mut reader) = connect(server.addr());
    stream.write_all(b"POST /v1/evaluate HT").unwrap();
    let response = http::read_response(&mut reader).expect("408 response");
    assert_eq!(response.status, 408);
    server.shutdown().expect("clean shutdown");
}

/// The other timeout tier: an idle keep-alive connection (no request
/// started) is closed silently — a 408 there would confuse clients that
/// simply kept a connection warm.
#[test]
fn idle_keepalive_connection_is_closed_silently() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(
        &dataset,
        ServerConfig {
            read_timeout: Duration::from_millis(150),
            ..ServerConfig::default()
        },
    );
    let (mut stream, mut reader) = connect(server.addr());
    stream.write_all(evaluate_request().as_bytes()).unwrap();
    let response = http::read_response(&mut reader).expect("first response");
    assert_eq!(response.status, 200);
    // Now idle past the deadline: the close must carry zero bytes.
    assert_closed(&mut reader);
    server.shutdown().expect("clean shutdown");
}

/// Pipelining: two requests written back-to-back in one segment get two
/// in-order responses.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(&dataset, ServerConfig::default());
    let (mut stream, mut reader) = connect(server.addr());
    stream
        .write_all(b"GET /v1/stats HTTP/1.1\r\n\r\nGET /v1/problems HTTP/1.1\r\n\r\n")
        .unwrap();
    let first = http::read_response(&mut reader).expect("first pipelined response");
    assert_eq!(first.status, 200);
    assert!(
        first.body.contains("queue_depth"),
        "stats first: {}",
        first.body
    );
    let second = http::read_response(&mut reader).expect("second pipelined response");
    assert_eq!(second.status, 200);
    assert!(second.body.contains("problems"), "problems second");
    server.shutdown().expect("clean shutdown");
}

/// A pathologically slow writer: the whole request delivered one byte
/// per write. The incremental parser must assemble it; no read deadline
/// fires because bytes keep arriving.
#[test]
fn one_byte_at_a_time_body_still_parses() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(&dataset, ServerConfig::default());
    let (mut stream, mut reader) = connect(server.addr());
    for byte in evaluate_request().as_bytes() {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
    }
    let response = http::read_response(&mut reader).expect("assembled response");
    assert_eq!(response.status, 200, "body: {}", response.body);
    server.shutdown().expect("clean shutdown");
}

/// An oversized head arriving on a warmed-up keep-alive connection gets
/// the typed 400, not a hang or a panic.
#[test]
fn oversized_header_mid_keepalive_is_rejected() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(&dataset, ServerConfig::default());
    let (mut stream, mut reader) = connect(server.addr());
    stream.write_all(evaluate_request().as_bytes()).unwrap();
    let response = http::read_response(&mut reader).expect("first response");
    assert_eq!(response.status, 200);
    // Second request on the same connection: a 20 KiB header line.
    let huge = format!(
        "GET /v1/stats HTTP/1.1\r\nx-padding: {}\r\n\r\n",
        "a".repeat(20 * 1024)
    );
    stream.write_all(huge.as_bytes()).unwrap();
    let response = http::read_response(&mut reader).expect("400 response");
    assert_eq!(response.status, 400);
    assert_closed(&mut reader);
    server.shutdown().expect("clean shutdown");
}

/// Threads running in this process, from `/proc/self/status`.
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// The C10K property itself: many concurrent keep-alive connections on
/// a 2-worker server are all served, and holding them open does not grow
/// the process thread count. The blocking server spawned one thread per
/// connection (64 here) and its third accept blocked forever behind the
/// pool.
#[test]
fn many_connections_are_served_without_thread_growth() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(
        &dataset,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );
    #[cfg(target_os = "linux")]
    let baseline = thread_count();

    // Open 64 connections and keep every one alive.
    let mut conns: Vec<(TcpStream, BufReader<TcpStream>)> =
        (0..64).map(|_| connect(server.addr())).collect();

    #[cfg(target_os = "linux")]
    {
        // Thread-per-connection would add 64 here; the event-driven core
        // adds zero. The wide margin absorbs unrelated test threads.
        let with_conns = thread_count();
        assert!(
            with_conns < baseline + 32,
            "thread count scaled with connections: {baseline} -> {with_conns}"
        );
    }

    // Every connection gets served despite workers=2 — no starvation of
    // connections beyond the worker count.
    let request = evaluate_request();
    for (stream, _) in conns.iter_mut() {
        stream.write_all(request.as_bytes()).unwrap();
    }
    for (i, (_, reader)) in conns.iter_mut().enumerate() {
        let response = http::read_response(reader).unwrap_or_else(|e| {
            panic!("connection {i} starved: {e:?}");
        });
        assert_eq!(response.status, 200, "connection {i}: {}", response.body);
    }
    server.shutdown().expect("clean shutdown");
}

/// Bugfix regression: the `queue_depth` gauge must read zero after
/// shutdown — every request queued at the instant the listener stopped
/// is still accounted, not leaked into phantom depth.
#[test]
fn queue_depth_gauge_is_zero_after_shutdown_under_load() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(
        &dataset,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );
    let service = Arc::clone(server.service());
    let corpus = loadgen::build_corpus(&dataset, 12);
    let report = loadgen::run(
        server.addr(),
        &corpus,
        &LoadGenConfig {
            clients: 4,
            requests: 60,
            ..LoadGenConfig::default()
        },
    )
    .expect("loadgen run");
    assert_eq!(report.outcomes.len(), 60);
    server.shutdown().expect("clean shutdown");
    assert_eq!(
        service.stats().queue_depth.load(Ordering::SeqCst),
        0,
        "queue_depth leaked across shutdown"
    );
    assert_eq!(
        service.stats().connections.load(Ordering::SeqCst),
        0,
        "connections gauge leaked across shutdown"
    );
    assert_eq!(service.stats().busy_workers.load(Ordering::SeqCst), 0);
}

/// A minimal fake server that answers exactly one request per
/// connection, then closes. Against it, every second request of a
/// keep-alive client hits a dead connection.
fn one_shot_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            });
            // Read one request head + declared body, answer, close.
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    content_length = usize::MAX; // peer gone
                    break;
                }
                let line = line.trim_end();
                if line.is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap_or(0);
                }
            }
            if content_length == usize::MAX {
                continue;
            }
            let mut body = vec![0u8; content_length];
            if reader.read_exact(&mut body).is_err() {
                continue;
            }
            let payload = br#"{"ok":true}"#;
            let mut stream = stream;
            let _ = stream.write_all(
                format!(
                    "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\
                     content-length: {}\r\nconnection: close\r\n\r\n",
                    payload.len()
                )
                .as_bytes(),
            );
            let _ = stream.write_all(payload);
            // Drop closes the connection: the client's next request on
            // it fails at the transport layer.
        }
    });
    (addr, handle)
}

/// Bugfix regression: a request that failed at the transport layer used
/// to be recorded as an error and *skipped* — a run asking for N
/// requests completed fewer. The retry-once-on-a-fresh-connection rule
/// makes a run against a close-happy (but always-responsive) server
/// complete exactly `requests` requests with zero transport errors.
#[test]
fn loadgen_retries_failed_requests_on_a_fresh_connection() {
    let (addr, _handle) = one_shot_server();
    let corpus = vec![LoadItem {
        problem_id: "pod-000".into(),
        variant: Variant::ALL[0],
        raw: "kind: Pod".into(),
    }];
    let report = loadgen::run(
        addr,
        &corpus,
        &LoadGenConfig {
            clients: 2,
            requests: 20,
            ..LoadGenConfig::default()
        },
    )
    .expect("loadgen run");
    // Pre-retry behavior lost every second sample per client (the dead
    // keep-alive connection counted as the request's one attempt).
    assert_eq!(report.transport_errors, 0, "retries should absorb closes");
    assert_eq!(report.outcomes.len(), 20, "every request must complete");
    assert!(report.outcomes.iter().all(|o| o.status == 200));
}
