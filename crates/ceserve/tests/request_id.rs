//! Observability conformance at the HTTP boundary: the `x-request-id`
//! echo on every response path (success, client error, shed, timeout),
//! the Prometheus text exposition of `/v1/metrics`, and the bound on the
//! span ring under sustained traffic.

use std::collections::HashSet;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use cedataset::Dataset;
use ceserve::{http, ServerConfig};

fn boot(dataset: &Arc<Dataset>, config: ServerConfig) -> ceserve::ServerHandle {
    ceserve::spawn("127.0.0.1:0", Arc::clone(dataset), config).expect("bind ephemeral port")
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

/// One raw round-trip with an explicit header block.
fn round_trip(
    addr: std::net::SocketAddr,
    raw_request: &str,
) -> Result<http::Response, http::RequestError> {
    let (mut stream, mut reader) = connect(addr);
    stream.write_all(raw_request.as_bytes()).unwrap();
    http::read_response(&mut reader)
}

#[test]
fn request_id_is_echoed_on_success_and_client_errors() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(&dataset, ServerConfig::default());
    let addr = server.addr();

    // Inline success path (GET answered by the event loop).
    let response = round_trip(
        addr,
        "GET /v1/stats HTTP/1.1\r\nx-request-id: req-ok-1\r\n\r\n",
    )
    .expect("stats response");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-request-id"), Some("req-ok-1"));

    // Worker success path (POST scored off the dispatch queue).
    let body = r#"{"problem_id":"pod-000","candidate":"kind: Pod"}"#;
    let request = format!(
        "POST /v1/evaluate HTTP/1.1\r\nx-request-id: req-ok-2\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let response = round_trip(addr, &request).expect("evaluate response");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-request-id"), Some("req-ok-2"));

    // Routed 4xx (the request parsed; the handler rejected it).
    let response = round_trip(addr, "GET /nope HTTP/1.1\r\nx-request-id: req-404\r\n\r\n")
        .expect("404 response");
    assert_eq!(response.status, 404);
    assert_eq!(response.header("x-request-id"), Some("req-404"));

    // Parse-error 4xx: no `Request` was ever built, so the echo comes
    // from scanning the raw buffered head.
    let response = round_trip(
        addr,
        "POST /v1/evaluate HTTP/1.1\r\nx-request-id: req-400\r\n\
         content-length: 4, 5\r\n\r\nabcd",
    )
    .expect("400 response");
    assert_eq!(response.status, 400);
    assert_eq!(response.header("x-request-id"), Some("req-400"));

    // A wire-unsafe id (here: far over the length bound) is dropped,
    // not echoed back.
    let oversized = format!(
        "GET /v1/stats HTTP/1.1\r\nx-request-id: {}\r\n\r\n",
        "a".repeat(200)
    );
    let response = round_trip(addr, &oversized).expect("stats response");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-request-id"), None);

    server.shutdown().expect("clean shutdown");
}

#[test]
fn request_id_is_echoed_on_408_timeout() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(
        &dataset,
        ServerConfig {
            read_timeout: Duration::from_millis(150),
            ..ServerConfig::default()
        },
    );
    // Head fully delivered (id included), body stalls: the 408 must
    // still carry the id scanned from the unfinished request's bytes.
    let (mut stream, mut reader) = connect(server.addr());
    stream
        .write_all(
            b"POST /v1/evaluate HTTP/1.1\r\nx-request-id: req-stall\r\n\
              content-length: 10\r\n\r\nabc",
        )
        .unwrap();
    let response = http::read_response(&mut reader).expect("408 response");
    assert_eq!(response.status, 408);
    assert_eq!(response.header("x-request-id"), Some("req-stall"));
    server.shutdown().expect("clean shutdown");
}

#[test]
fn request_id_is_echoed_on_503_shed() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(
        &dataset,
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    );
    // First connection holds the only slot.
    let (_held_stream, _held_reader) = connect(server.addr());
    std::thread::sleep(Duration::from_millis(50)); // let the accept land
    let response = round_trip(
        server.addr(),
        "GET /v1/stats HTTP/1.1\r\nx-request-id: req-shed\r\n\r\n",
    )
    .expect("503 response");
    assert_eq!(response.status, 503);
    assert_eq!(response.header("x-request-id"), Some("req-shed"));
    server.shutdown().expect("clean shutdown");
}

/// One Prometheus text line: `name{labels} value` (or `name value`),
/// returning the full series identity and whether the value parses.
fn parse_series_line(line: &str) -> (String, bool) {
    let (series, value) = match line.rfind(' ') {
        Some(at) => (&line[..at], &line[at + 1..]),
        None => return (line.to_owned(), false),
    };
    let name_end = series.find('{').unwrap_or(series.len());
    let name = &series[..name_end];
    let name_ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    let braces_ok = match series.find('{') {
        None => true,
        Some(_) => series.ends_with('}') && series.matches('{').count() == 1,
    };
    let value_ok = value == "+Inf" || value.parse::<f64>().is_ok();
    (series.to_owned(), name_ok && braces_ok && value_ok)
}

#[test]
fn metrics_exposition_conforms_and_has_no_duplicate_series() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(&dataset, ServerConfig::default());
    let addr = server.addr();

    // Warm a few endpoints so the exposition has non-trivial series.
    for path in ["/v1/stats", "/v1/problems", "/v1/stats"] {
        let response = round_trip(addr, &format!("GET {path} HTTP/1.1\r\n\r\n")).expect("warmup");
        assert_eq!(response.status, 200);
    }

    let (mut stream, mut reader) = connect(addr);
    stream
        .write_all(b"GET /v1/metrics HTTP/1.1\r\n\r\n")
        .unwrap();
    let response = http::read_response(&mut reader).expect("metrics response");
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("content-type"),
        Some("text/plain; version=0.0.4")
    );

    let mut seen: HashSet<String> = HashSet::new();
    let mut series_lines = 0usize;
    for line in response.body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        series_lines += 1;
        let (series, well_formed) = parse_series_line(line);
        assert!(well_formed, "malformed exposition line: {line:?}");
        assert!(seen.insert(series), "duplicate series: {line:?}");
    }
    assert!(series_lines > 10, "suspiciously sparse exposition");

    // The request-latency histogram must expose the full triplet with a
    // closing +Inf bucket.
    let stats = "http_request_us_bucket{endpoint=\"stats\"";
    assert!(response.body.contains(stats), "{}", response.body);
    assert!(
        response
            .body
            .contains("http_request_us_bucket{endpoint=\"stats\",le=\"+Inf\"}"),
        "{}",
        response.body
    );
    assert!(response
        .body
        .contains("http_request_us_sum{endpoint=\"stats\"}"));
    assert!(response
        .body
        .contains("http_request_us_count{endpoint=\"stats\"}"));
    server.shutdown().expect("clean shutdown");
}

#[test]
fn span_ring_stays_bounded_under_a_thousand_requests() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(&dataset, ServerConfig::default());
    let addr = server.addr();

    let collector = obs::spans();
    collector.set_enabled(true);
    // 1000 keep-alive requests, pipelined in bursts so the test is not
    // bound by per-request round-trip latency.
    let (mut stream, mut reader) = connect(addr);
    for burst in 0..10 {
        for i in 0..100 {
            let request =
                format!("GET /v1/stats HTTP/1.1\r\nx-request-id: ring-{burst}-{i}\r\n\r\n");
            stream.write_all(request.as_bytes()).unwrap();
        }
        for i in 0..100 {
            let response = http::read_response(&mut reader)
                .unwrap_or_else(|e| panic!("burst {burst} response {i}: {e:?}"));
            assert_eq!(response.status, 200);
        }
    }
    collector.set_enabled(false);
    let buffered = collector.len();
    assert!(
        buffered <= collector.capacity(),
        "span ring overflowed: {buffered} > {}",
        collector.capacity()
    );
    let spans = collector.drain();
    assert!(
        spans.iter().any(|s| s.name == "http_request"),
        "no http_request spans were captured"
    );
    server.shutdown().expect("clean shutdown");
}
