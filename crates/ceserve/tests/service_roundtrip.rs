//! End-to-end service suite: boot `ceserve` on an ephemeral port, drive
//! it with the built-in load generator, and prove the HTTP boundary is
//! invisible — every returned score is byte-identical to a direct
//! `harness::score_submission` run on the same candidate. Plus typed-4xx
//! robustness and memo persistence across a restart.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use cedataset::Dataset;
use ceserve::api::verdict_to_yaml;
use ceserve::loadgen::{self, LoadGenConfig};
use ceserve::{http, ServerConfig};
use cloudeval_core::harness::score_submission;
use evalcluster::memo::ScoreMemo;
use yamlkit::Yaml;

fn boot(dataset: &Arc<Dataset>, config: ServerConfig) -> ceserve::ServerHandle {
    ceserve::spawn("127.0.0.1:0", Arc::clone(dataset), config).expect("bind ephemeral port")
}

/// The canonical wire encoding of a verdict's `scores` object for a raw
/// candidate, computed without any HTTP in the path.
fn direct_scores_json(dataset: &Dataset, item: &loadgen::LoadItem) -> String {
    let problem = dataset
        .problems()
        .iter()
        .find(|p| p.id == item.problem_id)
        .expect("corpus problem exists");
    let verdict = score_submission(
        problem,
        item.variant,
        &item.raw,
        &ScoreMemo::new(),
        &cescore::RefCache::new(),
    );
    yamlkit::json::to_json(verdict_to_yaml(&verdict).get("scores").expect("scores"))
}

#[test]
fn loadgen_scores_are_byte_identical_to_direct_pipeline() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(
        &dataset,
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    );
    let corpus = loadgen::build_corpus(&dataset, 24);
    let report = loadgen::run(
        server.addr(),
        &corpus,
        &LoadGenConfig {
            clients: 4,
            requests: 120,
            ..LoadGenConfig::default()
        },
    )
    .expect("loadgen run");
    assert_eq!(report.transport_errors, 0);
    assert_eq!(report.outcomes.len(), 120);

    // Expected verdicts, one direct pipeline run per distinct corpus entry.
    let mut expected: HashMap<usize, String> = HashMap::new();
    for outcome in &report.outcomes {
        assert_eq!(outcome.status, 200, "body: {:?}", outcome.body);
        let want = expected
            .entry(outcome.corpus_index)
            .or_insert_with(|| direct_scores_json(&dataset, &corpus[outcome.corpus_index]));
        let got = yamlkit::json::to_json(outcome.body.get("scores").expect("scores in response"));
        assert_eq!(&got, want, "corpus[{}] diverged", outcome.corpus_index);
        // Bookkeeping echoes the request.
        assert_eq!(
            outcome.body.get("problem_id").and_then(Yaml::as_str),
            Some(corpus[outcome.corpus_index].problem_id.as_str())
        );
    }
    // The Zipf repeat distribution must have exercised the caches. The
    // response cache sits in front of the memo, so repeats land there
    // first; concurrent duplicates may additionally hit the memo.
    let stats = loadgen::fetch_stats(server.addr()).expect("stats");
    let memo_hits = stats
        .get_path(&["memo", "hits"])
        .and_then(Yaml::as_i64)
        .expect("memo.hits");
    let response_hits = stats
        .get_path(&["response_cache", "hits"])
        .and_then(Yaml::as_i64)
        .expect("response_cache.hits");
    assert!(
        memo_hits + response_hits > 0,
        "no cache hits under a Zipf workload: {stats}"
    );
    let served = stats
        .get_path(&["requests", "evaluate"])
        .and_then(Yaml::as_i64)
        .expect("requests.evaluate");
    assert_eq!(served, 120);
    // Every evaluate ran the scoring kernels, so their latency
    // histograms must be populated and surfaced under score_kernels.
    for metric in ["bleu", "editdist"] {
        let recorded = stats
            .get_path(&["score_kernels", metric, "count"])
            .and_then(Yaml::as_i64)
            .unwrap_or_else(|| panic!("score_kernels.{metric}.count missing: {stats}"));
        assert!(recorded > 0, "score_kernels.{metric} never recorded");
    }
    server.shutdown().expect("clean shutdown");
}

/// Sends raw bytes and returns the parsed response.
fn raw_request(addr: std::net::SocketAddr, bytes: &[u8]) -> http::Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream.write_all(bytes).expect("send");
    stream.flush().unwrap();
    http::read_response(&mut reader).expect("response")
}

fn error_code(response: &http::Response) -> String {
    yamlkit::parse_one(&response.body)
        .expect("error body parses")
        .to_value()
        .get_path(&["error", "code"])
        .and_then(Yaml::as_str)
        .unwrap_or("<none>")
        .to_owned()
}

#[test]
fn malformed_requests_get_typed_errors_not_panics() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(&dataset, ServerConfig::default());
    let addr = server.addr();

    // Bad JSON body.
    let bad_json = b"POST /v1/evaluate HTTP/1.1\r\ncontent-length: 9\r\n\r\nnot json{";
    let response = raw_request(addr, bad_json);
    assert_eq!(response.status, 400);
    assert_eq!(error_code(&response), "bad_request");

    // Valid JSON, unknown problem id.
    let body = r#"{"problem_id":"no-such-problem","candidate":"kind: Pod"}"#;
    let request = format!(
        "POST /v1/evaluate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let response = raw_request(addr, request.as_bytes());
    assert_eq!(response.status, 404);
    assert_eq!(error_code(&response), "unknown_problem");

    // Valid JSON, missing candidate.
    let body = r#"{"problem_id":"pod-000"}"#;
    let request = format!(
        "POST /v1/evaluate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let response = raw_request(addr, request.as_bytes());
    assert_eq!(response.status, 400);

    // Oversized body, rejected on the declared length alone.
    let oversized = b"POST /v1/evaluate HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n";
    let response = raw_request(addr, oversized);
    assert_eq!(response.status, 413);
    assert_eq!(error_code(&response), "body_too_large");

    // Wrong method on a known endpoint.
    let response = raw_request(addr, b"DELETE /v1/stats HTTP/1.1\r\n\r\n");
    assert_eq!(response.status, 405);
    assert_eq!(error_code(&response), "method_not_allowed");

    // Unknown endpoint.
    let response = raw_request(addr, b"GET /v2/nope HTTP/1.1\r\n\r\n");
    assert_eq!(response.status, 404);
    assert_eq!(error_code(&response), "not_found");

    // Not HTTP at all.
    let response = raw_request(addr, b"TOTAL GARBAGE\r\n\r\n");
    assert_eq!(response.status, 400);

    // The server is still healthy after all of that.
    let stats = loadgen::fetch_stats(addr).expect("stats after abuse");
    assert!(stats.get_path(&["requests", "errors_4xx"]).is_some());
    server.shutdown().expect("clean shutdown");
}

#[test]
fn verdicts_persist_across_restart() {
    let dataset = Arc::new(Dataset::generate());
    let path = std::env::temp_dir().join(format!("ceserve-persist-{}.jsonl", std::process::id()));
    std::fs::remove_file(&path).ok();
    let config = ServerConfig {
        workers: 2,
        memo_path: Some(path.clone()),
        ..ServerConfig::default()
    };
    let corpus = loadgen::build_corpus(&dataset, 4);

    let server = boot(&dataset, config.clone());
    let report = loadgen::run(
        server.addr(),
        &corpus,
        &LoadGenConfig {
            clients: 1,
            requests: 4,
            zipf_exponent: 0.0,
            ..LoadGenConfig::default()
        },
    )
    .expect("first run");
    assert_eq!(report.transport_errors, 0);
    server
        .shutdown()
        .expect("first shutdown persists the store");
    assert!(path.exists(), "verdict store written on shutdown");

    // A fresh process-equivalent: new server, same store.
    let server = boot(&dataset, config);
    let stats = loadgen::fetch_stats(server.addr()).expect("stats");
    let entries = stats
        .get_path(&["memo", "entries"])
        .and_then(Yaml::as_i64)
        .expect("memo.entries");
    assert!(entries > 0, "store not loaded: {stats}");
    // A repeat submission is served from cache without a substrate run.
    let report = loadgen::run(
        server.addr(),
        &corpus,
        &LoadGenConfig {
            clients: 1,
            requests: 4,
            zipf_exponent: 0.0,
            ..LoadGenConfig::default()
        },
    )
    .expect("second run");
    for outcome in &report.outcomes {
        assert_eq!(outcome.status, 200);
        assert_eq!(
            outcome.body.get("cached").and_then(Yaml::as_bool),
            Some(true),
            "expected a cache-served verdict: {}",
            outcome.body
        );
    }
    server.shutdown().expect("second shutdown");
    std::fs::remove_file(&path).ok();
}

#[test]
fn batch_streams_every_item_with_identical_scores() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(
        &dataset,
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    );
    let mut corpus = loadgen::build_corpus(&dataset, 9);
    corpus.push(corpus[0].clone()); // in-batch duplicate → dedup path
    let items: Yaml = corpus
        .iter()
        .map(|item| {
            yamlkit::parse_one(&loadgen::evaluate_body(item))
                .unwrap()
                .to_value()
        })
        .collect();
    let body = yamlkit::json::to_json(&yamlkit::ymap! { "items" => items });
    let request = format!(
        "POST /v1/batch HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let response = raw_request(server.addr(), request.as_bytes());
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("transfer-encoding").map(str::to_owned),
        Some("chunked".into())
    );

    let lines: Vec<Yaml> = response
        .body
        .lines()
        .map(|line| yamlkit::parse_one(line).expect("ndjson line").to_value())
        .collect();
    assert_eq!(lines.len(), corpus.len() + 1, "results + summary");
    let summary = lines.last().unwrap();
    assert_eq!(
        summary.get("done").and_then(Yaml::as_i64),
        Some(corpus.len() as i64)
    );
    assert!(summary.get("cache_hits").and_then(Yaml::as_i64) >= Some(1));

    let mut seen = vec![false; corpus.len()];
    for line in &lines[..corpus.len()] {
        let index = line.get("index").and_then(Yaml::as_i64).expect("index") as usize;
        assert!(!seen[index], "duplicate emission for {index}");
        seen[index] = true;
        let got =
            yamlkit::json::to_json(line.get_path(&["result", "scores"]).expect("result.scores"));
        assert_eq!(
            got,
            direct_scores_json(&dataset, &corpus[index]),
            "batch item {index} diverged"
        );
    }
    assert!(seen.iter().all(|s| *s), "every index answered");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn stats_bucket_failures_by_taxonomy_without_double_counting_replays() {
    let dataset = Arc::new(Dataset::generate());
    let server = boot(&dataset, ServerConfig::default());
    let addr = server.addr();
    let problem_id = &dataset.problems()[0].id;

    // An unparseable candidate always lands in the yaml-syntax bucket.
    let body = format!(r#"{{"problem_id":"{problem_id}","candidate":"kind: Pod\nbroken: ["}}"#);
    let request = format!(
        "POST /v1/evaluate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let response = raw_request(addr, request.as_bytes());
    assert_eq!(response.status, 200);
    let verdict = yamlkit::parse_one(&response.body).unwrap().to_value();
    assert_eq!(verdict.get("passed").and_then(Yaml::as_bool), Some(false));
    assert_eq!(
        verdict.get("failure_bucket").and_then(Yaml::as_str),
        Some("yaml-syntax")
    );

    let counted = |stats: &Yaml| {
        stats
            .get_path(&["taxonomy", "yaml-syntax"])
            .and_then(Yaml::as_i64)
            .expect("taxonomy.yaml-syntax")
    };
    let stats = loadgen::fetch_stats(addr).expect("stats");
    assert_eq!(counted(&stats), 1, "one judged failure: {stats}");
    // Every bucket is present with a stable key, zero or not.
    for bucket in substrate::taxonomy::Bucket::ALL {
        assert!(
            stats.get_path(&["taxonomy", bucket.label()]).is_some(),
            "missing taxonomy key {}: {stats}",
            bucket.label()
        );
    }

    // A replay is served from the response cache and does not re-count.
    let response = raw_request(addr, request.as_bytes());
    assert_eq!(response.status, 200);
    let replay = yamlkit::parse_one(&response.body).unwrap().to_value();
    assert_eq!(replay.get("cached").and_then(Yaml::as_bool), Some(true));
    let stats = loadgen::fetch_stats(addr).expect("stats after replay");
    assert_eq!(counted(&stats), 1, "replay must not re-count: {stats}");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn problems_endpoint_lists_the_extended_corpus() {
    let dataset = Arc::new(Dataset::generate_extended(30));
    let server = boot(&dataset, ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    http::write_request(&mut stream, "GET", "/v1/problems", None).unwrap();
    let response = http::read_response(&mut reader).expect("problems response");
    assert_eq!(response.status, 200);
    let body = yamlkit::parse_one(&response.body).unwrap().to_value();
    assert_eq!(
        body.get("count").and_then(Yaml::as_i64),
        Some(dataset.len() as i64)
    );
    let problems = body.get("problems").expect("problems array");
    assert_eq!(problems.seq_len(), Some(dataset.len()));
    let first = problems.idx(0).unwrap();
    assert!(first.get("id").and_then(Yaml::as_str).is_some());
    assert_eq!(first.get("variants").and_then(Yaml::seq_len), Some(3));
    server.shutdown().expect("clean shutdown");
}
