//! The interpreter: word expansion, builtins, pipelines, control flow, and
//! a virtual filesystem. External commands (kubectl, curl, minikube, envoy)
//! are delegated to a [`Sandbox`].

use std::collections::HashMap;

use crate::expand::{arith_eval, glob_match};
use crate::lang::{self, Cmd, RedirOp, Seg, Word};
use crate::regex::Regex;

/// Result of one external command.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecResult {
    /// Captured stdout.
    pub stdout: String,
    /// Captured stderr.
    pub stderr: String,
    /// Exit code.
    pub code: i32,
    /// The command would block forever (e.g. `minikube service` holding a
    /// tunnel open); `timeout` converts this into exit 124.
    pub blocking: bool,
}

/// Host environment for external commands and simulated time.
pub trait Sandbox {
    /// Runs an external command; `None` means "unknown command".
    fn run(
        &mut self,
        name: &str,
        args: &[String],
        stdin: &str,
        files: &mut HashMap<String, String>,
    ) -> Option<ExecResult>;

    /// Advances simulated time (used by `sleep` and `timeout`).
    fn sleep(&mut self, ms: u64);
}

/// A sandbox with no external commands (pure-shell scripts and tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct EmptySandbox;

impl Sandbox for EmptySandbox {
    fn run(
        &mut self,
        _name: &str,
        _args: &[String],
        _stdin: &str,
        _files: &mut HashMap<String, String>,
    ) -> Option<ExecResult> {
        None
    }

    fn sleep(&mut self, _ms: u64) {}
}

/// Error from running a script (parse failure or fuel exhaustion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShellError(pub String);

impl std::fmt::Display for ShellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shell error: {}", self.0)
    }
}

impl std::error::Error for ShellError {}

/// Outcome of a whole script run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptOutcome {
    /// Final stdout.
    pub stdout: String,
    /// Interleaved stdout + stderr transcript (what the benchmark greps
    /// for `unit_test_passed`).
    pub combined: String,
    /// Exit code of the script.
    pub exit_code: i32,
}

enum Flow {
    Normal(i32),
    Break,
    Continue,
    Exit(i32),
}

/// The shell interpreter.
///
/// # Examples
///
/// ```
/// use minishell::{EmptySandbox, Interp};
/// let mut sandbox = EmptySandbox;
/// let mut sh = Interp::new(&mut sandbox);
/// let out = sh.run_script("x=40; ((x += 2)); echo value=$x").unwrap();
/// assert_eq!(out.stdout, "value=42\n");
/// ```
pub struct Interp<'a> {
    /// Shell variables.
    pub vars: HashMap<String, String>,
    /// Virtual filesystem: name → contents.
    pub files: HashMap<String, String>,
    sandbox: &'a mut dyn Sandbox,
    last_status: i32,
    fuel: u64,
    total_sleep_ms: u64,
}

impl<'a> Interp<'a> {
    /// Creates an interpreter over a sandbox.
    pub fn new(sandbox: &'a mut dyn Sandbox) -> Interp<'a> {
        Interp {
            vars: HashMap::new(),
            files: HashMap::new(),
            sandbox,
            last_status: 0,
            fuel: 200_000,
            total_sleep_ms: 0,
        }
    }

    /// Total simulated time the script slept.
    pub fn slept_ms(&self) -> u64 {
        self.total_sleep_ms
    }

    /// Parses and runs a script.
    ///
    /// # Errors
    ///
    /// [`ShellError`] on parse failure or when the step budget is exceeded
    /// (runaway loops).
    pub fn run_script(&mut self, src: &str) -> Result<ScriptOutcome, ShellError> {
        let prog = lang::parse(src).map_err(|e| ShellError(e.to_string()))?;
        let mut out = String::new();
        let mut err = String::new();
        let code = match self.exec_list(&prog, "", &mut out, &mut err)? {
            Flow::Exit(c) | Flow::Normal(c) => c,
            Flow::Break | Flow::Continue => 0,
        };
        let mut combined = out.clone();
        combined.push_str(&err);
        Ok(ScriptOutcome {
            stdout: out,
            combined,
            exit_code: code,
        })
    }

    fn burn(&mut self) -> Result<(), ShellError> {
        self.fuel = self.fuel.saturating_sub(1);
        if self.fuel == 0 {
            return Err(ShellError(
                "script exceeded step budget (runaway loop?)".into(),
            ));
        }
        Ok(())
    }

    fn exec_list(
        &mut self,
        cmds: &[Cmd],
        stdin: &str,
        out: &mut String,
        err: &mut String,
    ) -> Result<Flow, ShellError> {
        let mut status = self.last_status;
        for cmd in cmds {
            match self.exec_cmd(cmd, stdin, out, err)? {
                Flow::Normal(c) => status = c,
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal(status))
    }

    fn exec_cmd(
        &mut self,
        cmd: &Cmd,
        stdin: &str,
        out: &mut String,
        err: &mut String,
    ) -> Result<Flow, ShellError> {
        self.burn()?;
        match cmd {
            Cmd::Simple {
                assignments,
                words,
                redirects,
            } => self.exec_simple(assignments, words, redirects, stdin, out, err),
            Cmd::Pipeline(cmds) => {
                let mut cur_in = stdin.to_owned();
                let mut status = 0;
                for (i, c) in cmds.iter().enumerate() {
                    let mut stage_out = String::new();
                    match self.exec_cmd(c, &cur_in, &mut stage_out, err)? {
                        Flow::Normal(s) => status = s,
                        Flow::Exit(s) => {
                            // `exit` in a pipeline stage ends that stage only.
                            status = s;
                        }
                        flow @ (Flow::Break | Flow::Continue) => return Ok(flow),
                    }
                    if i + 1 == cmds.len() {
                        out.push_str(&stage_out);
                    } else {
                        cur_in = stage_out;
                    }
                }
                self.last_status = status;
                Ok(Flow::Normal(status))
            }
            Cmd::AndOr { cmds, ops } => {
                let mut flow = self.exec_cmd(&cmds[0], stdin, out, err)?;
                for (op, next) in ops.iter().zip(&cmds[1..]) {
                    let status = match flow {
                        Flow::Normal(s) => s,
                        other => return Ok(other),
                    };
                    let should_run = if *op { status == 0 } else { status != 0 };
                    if should_run {
                        flow = self.exec_cmd(next, stdin, out, err)?;
                    }
                }
                Ok(flow)
            }
            Cmd::Not(inner) => match self.exec_cmd(inner, stdin, out, err)? {
                Flow::Normal(s) => {
                    let status = i32::from(s == 0);
                    self.last_status = status;
                    Ok(Flow::Normal(status))
                }
                other => Ok(other),
            },
            Cmd::If { arms, otherwise } => {
                for (cond, body) in arms {
                    let c = match self.exec_list(cond, stdin, out, err)? {
                        Flow::Normal(c) => c,
                        other => return Ok(other),
                    };
                    if c == 0 {
                        return self.exec_list(body, stdin, out, err);
                    }
                }
                self.exec_list(otherwise, stdin, out, err)
            }
            Cmd::For { var, items, body } => {
                let mut fields = Vec::new();
                for w in items {
                    fields.extend(self.expand_fields(w, out, err)?);
                }
                let mut status = 0;
                'outer: for f in fields {
                    self.vars.insert(var.clone(), f);
                    match self.exec_list(body, stdin, out, err)? {
                        Flow::Normal(s) => status = s,
                        Flow::Break => break 'outer,
                        Flow::Continue => continue,
                        exit @ Flow::Exit(_) => return Ok(exit),
                    }
                }
                self.last_status = status;
                Ok(Flow::Normal(status))
            }
            Cmd::While { cond, body } => {
                let mut status = 0;
                loop {
                    self.burn()?;
                    let c = match self.exec_list(cond, stdin, out, err)? {
                        Flow::Normal(c) => c,
                        other => return Ok(other),
                    };
                    if c != 0 {
                        break;
                    }
                    match self.exec_list(body, stdin, out, err)? {
                        Flow::Normal(s) => status = s,
                        Flow::Break => break,
                        Flow::Continue => continue,
                        exit @ Flow::Exit(_) => return Ok(exit),
                    }
                }
                self.last_status = status;
                Ok(Flow::Normal(status))
            }
            Cmd::Arith(expr) => {
                let expanded = self.expand_arith_text(expr, out, err)?;
                match arith_eval(&expanded, &mut self.vars) {
                    Ok(v) => {
                        let status = i32::from(v == 0);
                        self.last_status = status;
                        Ok(Flow::Normal(status))
                    }
                    Err(e) => {
                        err.push_str(&format!("bash: ((: {e}\n"));
                        self.last_status = 1;
                        Ok(Flow::Normal(1))
                    }
                }
            }
            Cmd::Cond(words) => {
                let status = self.eval_cond(words, out, err)?;
                self.last_status = status;
                Ok(Flow::Normal(status))
            }
            Cmd::LoopCtl(is_break) => Ok(if *is_break {
                Flow::Break
            } else {
                Flow::Continue
            }),
        }
    }

    fn exec_simple(
        &mut self,
        assignments: &[(String, Word)],
        words: &[Word],
        redirects: &[lang::Redirect],
        stdin: &str,
        out: &mut String,
        err: &mut String,
    ) -> Result<Flow, ShellError> {
        for (name, value) in assignments {
            let v = self.expand_joined(value, out, err)?;
            self.vars.insert(name.clone(), v);
        }
        if words.is_empty() {
            self.last_status = 0;
            return Ok(Flow::Normal(0));
        }
        let mut argv: Vec<String> = Vec::new();
        for w in words {
            argv.extend(self.expand_fields(w, out, err)?);
        }
        if argv.is_empty() {
            self.last_status = 0;
            return Ok(Flow::Normal(0));
        }
        // Apply input redirection before running.
        let mut effective_stdin = stdin.to_owned();
        for r in redirects {
            if r.op == RedirOp::In {
                let target = self.expand_joined(&r.target, out, err)?;
                effective_stdin = self.files.get(&target).cloned().unwrap_or_default();
            }
        }
        let (mut cmd_out, mut cmd_err, code) =
            match self.run_command(&argv, &effective_stdin, err)? {
                RunOutcome::Captured { out, err, code } => (out, err, code),
                RunOutcome::Exit(c) => return Ok(Flow::Exit(c)),
            };
        // Apply output redirections.
        let mut out_target: Option<(String, bool)> = None;
        let mut err_target: Option<(String, bool)> = None;
        let mut err_to_out = false;
        for r in redirects {
            match r.op {
                RedirOp::Out => {
                    out_target = Some((self.expand_joined(&r.target, out, err)?, false))
                }
                RedirOp::Append => {
                    out_target = Some((self.expand_joined(&r.target, out, err)?, true))
                }
                RedirOp::ErrOut => {
                    err_target = Some((self.expand_joined(&r.target, out, err)?, false))
                }
                RedirOp::ErrAppend => {
                    err_target = Some((self.expand_joined(&r.target, out, err)?, true))
                }
                RedirOp::ErrToOut => err_to_out = true,
                RedirOp::AllOut => {
                    let t = self.expand_joined(&r.target, out, err)?;
                    out_target = Some((t, false));
                    err_to_out = true;
                }
                RedirOp::In => {}
            }
        }
        if err_to_out {
            cmd_out.push_str(&cmd_err);
            cmd_err.clear();
        }
        if let Some((file, append)) = out_target {
            self.write_file(&file, std::mem::take(&mut cmd_out), append);
        }
        if let Some((file, append)) = err_target {
            self.write_file(&file, std::mem::take(&mut cmd_err), append);
        }
        out.push_str(&cmd_out);
        err.push_str(&cmd_err);
        self.last_status = code;
        Ok(Flow::Normal(code))
    }

    fn write_file(&mut self, name: &str, content: String, append: bool) {
        if name == "/dev/null" {
            return;
        }
        if append {
            self.files
                .entry(name.to_owned())
                .or_default()
                .push_str(&content);
        } else {
            self.files.insert(name.to_owned(), content);
        }
    }

    /// Expands a word into whitespace-split fields (bash word splitting on
    /// unquoted expansions).
    fn expand_fields(
        &mut self,
        word: &Word,
        out: &mut String,
        err: &mut String,
    ) -> Result<Vec<String>, ShellError> {
        let mut fields: Vec<String> = Vec::new();
        let mut current = String::new();
        let mut any = false;
        for seg in &word.segs {
            let (text, quoted) = self.expand_seg(seg, out, err)?;
            if quoted {
                current.push_str(&text);
                any = true;
            } else {
                let starts_ws = text.starts_with(char::is_whitespace);
                let ends_ws = text.ends_with(char::is_whitespace);
                let parts: Vec<&str> = text.split_whitespace().collect();
                if starts_ws && (any || !current.is_empty()) {
                    fields.push(std::mem::take(&mut current));
                    any = false;
                }
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        fields.push(std::mem::take(&mut current));
                    }
                    current.push_str(p);
                    any = true;
                }
                if ends_ws && !parts.is_empty() {
                    fields.push(std::mem::take(&mut current));
                    any = false;
                }
            }
        }
        if any || !current.is_empty() {
            fields.push(current);
        }
        Ok(fields)
    }

    /// Expands a word into a single string (assignment RHS, redirect
    /// targets): no field splitting.
    fn expand_joined(
        &mut self,
        word: &Word,
        out: &mut String,
        err: &mut String,
    ) -> Result<String, ShellError> {
        let mut s = String::new();
        for seg in &word.segs {
            s.push_str(&self.expand_seg(seg, out, err)?.0);
        }
        Ok(s)
    }

    /// Expands a word into a glob pattern string: characters from quoted
    /// segments are backslash-escaped so they match literally.
    fn expand_pattern(
        &mut self,
        word: &Word,
        out: &mut String,
        err: &mut String,
    ) -> Result<String, ShellError> {
        let mut s = String::new();
        for seg in &word.segs {
            let (text, quoted) = self.expand_seg(seg, out, err)?;
            if quoted {
                for c in text.chars() {
                    s.push('\\');
                    s.push(c);
                }
            } else {
                s.push_str(&text);
            }
        }
        Ok(s)
    }

    fn expand_seg(
        &mut self,
        seg: &Seg,
        out: &mut String,
        err: &mut String,
    ) -> Result<(String, bool), ShellError> {
        Ok(match seg {
            Seg::Lit { text, quoted } => (text.clone(), *quoted),
            Seg::Var {
                name,
                default,
                quoted,
            } => {
                // `${#name}` expands to the value's length.
                let v = if let Some(inner) = name.strip_prefix('#').filter(|n| !n.is_empty()) {
                    self.var(inner).chars().count().to_string()
                } else {
                    self.var(name)
                };
                let v = if v.is_empty() {
                    default.clone().unwrap_or_default()
                } else {
                    v
                };
                (v, *quoted)
            }
            Seg::CmdSub { script, quoted } => {
                let captured = self.command_substitute(script, err)?;
                let _ = out;
                (captured.trim_end_matches('\n').to_owned(), *quoted)
            }
            Seg::Arith { expr } => {
                let expanded = self.expand_arith_text(expr, out, err)?;
                match arith_eval(&expanded, &mut self.vars) {
                    Ok(v) => (v.to_string(), false),
                    Err(e) => {
                        err.push_str(&format!("bash: $(( )): {e}\n"));
                        (String::new(), false)
                    }
                }
            }
        })
    }

    /// Expands `$var` / `$(cmd)` occurrences inside an arithmetic source
    /// string (bash expands before evaluating).
    fn expand_arith_text(
        &mut self,
        expr: &str,
        _out: &mut String,
        err: &mut String,
    ) -> Result<String, ShellError> {
        if !expr.contains("$(") {
            return Ok(expr.to_owned());
        }
        let mut result = String::new();
        let mut rest = expr;
        while let Some(idx) = rest.find("$(") {
            result.push_str(&rest[..idx]);
            let after = &rest[idx + 2..];
            let mut depth = 1;
            let mut end = 0;
            for (i, c) in after.char_indices() {
                match c {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            end = i;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let script = &after[..end];
            let captured = self.command_substitute(script, err)?;
            result.push_str(captured.trim());
            rest = &after[end + 1..];
        }
        result.push_str(rest);
        Ok(result)
    }

    fn command_substitute(&mut self, script: &str, err: &mut String) -> Result<String, ShellError> {
        let prog = lang::parse(script).map_err(|e| ShellError(e.to_string()))?;
        let mut sub_out = String::new();
        let mut sub_err = String::new();
        let flow = self.exec_list(&prog, "", &mut sub_out, &mut sub_err)?;
        err.push_str(&sub_err);
        self.last_status = match flow {
            Flow::Normal(c) | Flow::Exit(c) => c,
            _ => 0,
        };
        Ok(sub_out)
    }

    fn var(&self, name: &str) -> String {
        match name {
            "?" => self.last_status.to_string(),
            "#" => "0".to_owned(),
            "HOME" => "/root".to_owned(),
            "RANDOM" => "17".to_owned(), // deterministic by design
            _ => self.vars.get(name).cloned().unwrap_or_default(),
        }
    }

    // ------------------------------------------------------------------
    // [[ ]] / [ ] conditions
    // ------------------------------------------------------------------

    fn eval_cond(
        &mut self,
        words: &[Word],
        out: &mut String,
        err: &mut String,
    ) -> Result<i32, ShellError> {
        let v = self.eval_cond_expr(words, 0, out, err)?;
        Ok(i32::from(!v.0))
    }

    /// Evaluates a condition starting at `pos`; returns (truth, next_pos).
    fn eval_cond_expr(
        &mut self,
        words: &[Word],
        pos: usize,
        out: &mut String,
        err: &mut String,
    ) -> Result<(bool, usize), ShellError> {
        let (mut acc, mut pos) = self.eval_cond_term(words, pos, out, err)?;
        loop {
            match words.get(pos).and_then(Word::as_keyword) {
                Some("&&") | Some("-a") => {
                    let (rhs, next) = self.eval_cond_term(words, pos + 1, out, err)?;
                    acc = acc && rhs;
                    pos = next;
                }
                Some("||") | Some("-o") => {
                    let (rhs, next) = self.eval_cond_term(words, pos + 1, out, err)?;
                    acc = acc || rhs;
                    pos = next;
                }
                _ => break,
            }
        }
        Ok((acc, pos))
    }

    fn eval_cond_term(
        &mut self,
        words: &[Word],
        pos: usize,
        out: &mut String,
        err: &mut String,
    ) -> Result<(bool, usize), ShellError> {
        match words.get(pos).and_then(Word::as_keyword) {
            Some("!") => {
                let (v, next) = self.eval_cond_term(words, pos + 1, out, err)?;
                return Ok((!v, next));
            }
            Some("(") => {
                let (v, next) = self.eval_cond_expr(words, pos + 1, out, err)?;
                // Expect ")".
                let after = if words.get(next).and_then(Word::as_keyword) == Some(")") {
                    next + 1
                } else {
                    next
                };
                return Ok((v, after));
            }
            _ => {}
        }
        // Unary operators.
        if let Some(op) = words.get(pos).and_then(Word::as_keyword) {
            if matches!(
                op,
                "-z" | "-n" | "-f" | "-e" | "-s" | "-d" | "-r" | "-w" | "-x"
            ) {
                let operand = words
                    .get(pos + 1)
                    .map(|w| self.expand_joined(w, out, err))
                    .transpose()?
                    .unwrap_or_default();
                let v = match op {
                    "-z" => operand.is_empty(),
                    "-n" => !operand.is_empty(),
                    "-f" | "-e" | "-r" | "-w" | "-x" => self.files.contains_key(&operand),
                    "-s" => self.files.get(&operand).is_some_and(|c| !c.is_empty()),
                    "-d" => false, // no directories in the VFS
                    _ => false,
                };
                return Ok((v, pos + 2));
            }
        }
        // Binary operator or bare string.
        let lhs = words
            .get(pos)
            .map(|w| self.expand_joined(w, out, err))
            .transpose()?
            .unwrap_or_default();
        let Some(op_word) = words.get(pos + 1) else {
            return Ok((!lhs.is_empty(), pos + 1));
        };
        let Some(op) = op_word.as_keyword().map(str::to_owned) else {
            return Ok((!lhs.is_empty(), pos + 1));
        };
        match op.as_str() {
            "==" | "=" | "!=" => {
                let rhs_word = words.get(pos + 2).cloned().unwrap_or_default();
                let pattern = self.expand_pattern(&rhs_word, out, err)?;
                let matched = glob_match(&pattern, &lhs);
                let v = if op == "!=" { !matched } else { matched };
                Ok((v, pos + 3))
            }
            "=~" => {
                let rhs_word = words.get(pos + 2).cloned().unwrap_or_default();
                let pattern = self.expand_joined(&rhs_word, out, err)?;
                let v = Regex::new(&pattern)
                    .map(|re| re.is_match(&lhs))
                    .unwrap_or(false);
                Ok((v, pos + 3))
            }
            "-eq" | "-ne" | "-lt" | "-le" | "-gt" | "-ge" => {
                let rhs = words
                    .get(pos + 2)
                    .map(|w| self.expand_joined(w, out, err))
                    .transpose()?
                    .unwrap_or_default();
                let a: i64 = lhs.trim().parse().unwrap_or(0);
                let b: i64 = rhs.trim().parse().unwrap_or(0);
                let v = match op.as_str() {
                    "-eq" => a == b,
                    "-ne" => a != b,
                    "-lt" => a < b,
                    "-le" => a <= b,
                    "-gt" => a > b,
                    _ => a >= b,
                };
                Ok((v, pos + 3))
            }
            "<" | ">" => {
                let rhs = words
                    .get(pos + 2)
                    .map(|w| self.expand_joined(w, out, err))
                    .transpose()?
                    .unwrap_or_default();
                let v = if op == "<" { lhs < rhs } else { lhs > rhs };
                Ok((v, pos + 3))
            }
            _ => Ok((!lhs.is_empty(), pos + 1)),
        }
    }
}

mod commands;
pub use commands::*;
