//! Shell arithmetic (`(( ))` / `$(( ))`) and glob pattern matching for
//! `[[ x == pattern ]]`.

use std::collections::HashMap;

/// Evaluates a shell arithmetic expression, mutating variables for
/// assignment and increment operators, and returns the value.
///
/// # Errors
///
/// Returns a message for malformed expressions or division by zero.
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// let mut env = HashMap::new();
/// env.insert("passed_tests".to_owned(), "2".to_owned());
/// let v = minishell::expand::arith_eval("passed_tests++", &mut env).unwrap();
/// assert_eq!(v, 2); // post-increment returns the old value
/// assert_eq!(env["passed_tests"], "3");
/// ```
pub fn arith_eval(expr: &str, env: &mut HashMap<String, String>) -> Result<i64, String> {
    let tokens = arith_lex(expr)?;
    let mut p = ArithParser {
        tokens,
        pos: 0,
        env,
    };
    let v = p.assign()?;
    if p.pos != p.tokens.len() {
        return Err(format!(
            "unexpected token in arithmetic: {:?}",
            p.tokens[p.pos]
        ));
    }
    Ok(v)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ATok {
    Num(i64),
    Var(String),
    Op(String),
}

fn arith_lex(expr: &str) -> Result<Vec<ATok>, String> {
    let chars: Vec<char> = expr.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' => i += 1,
            '0'..='9' => {
                let mut n = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    n.push(chars[i]);
                    i += 1;
                }
                out.push(ATok::Num(n.parse().map_err(|_| "bad number")?));
            }
            c if c.is_alphabetic() || c == '_' || c == '$' => {
                let mut name = String::new();
                if c == '$' {
                    i += 1; // `$x` inside arithmetic is the same as `x`
                }
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    name.push(chars[i]);
                    i += 1;
                }
                if name.is_empty() {
                    return Err("bad variable".into());
                }
                out.push(ATok::Var(name));
            }
            _ => {
                let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
                let ops2 = [
                    "++", "--", "+=", "-=", "*=", "/=", "%=", "==", "!=", "<=", ">=", "&&", "||",
                ];
                if ops2.contains(&two.as_str()) {
                    out.push(ATok::Op(two));
                    i += 2;
                } else if "+-*/%()<>=!".contains(c) {
                    out.push(ATok::Op(c.to_string()));
                    i += 1;
                } else {
                    return Err(format!("unexpected character {c:?} in arithmetic"));
                }
            }
        }
    }
    Ok(out)
}

struct ArithParser<'a> {
    tokens: Vec<ATok>,
    pos: usize,
    env: &'a mut HashMap<String, String>,
}

impl ArithParser<'_> {
    fn get(&self, name: &str) -> i64 {
        self.env
            .get(name)
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    }

    fn set(&mut self, name: &str, v: i64) {
        self.env.insert(name.to_owned(), v.to_string());
    }

    fn peek_op(&self) -> Option<&str> {
        match self.tokens.get(self.pos) {
            Some(ATok::Op(o)) => Some(o),
            _ => None,
        }
    }

    fn assign(&mut self) -> Result<i64, String> {
        // var (=|+=|-=|*=|/=|%=) expr
        if let (Some(ATok::Var(name)), Some(ATok::Op(op))) = (
            self.tokens.get(self.pos).cloned(),
            self.tokens.get(self.pos + 1).cloned(),
        ) {
            if matches!(op.as_str(), "=" | "+=" | "-=" | "*=" | "/=" | "%=") {
                self.pos += 2;
                let rhs = self.assign()?;
                let old = self.get(&name);
                let v = match op.as_str() {
                    "=" => rhs,
                    "+=" => old + rhs,
                    "-=" => old - rhs,
                    "*=" => old * rhs,
                    "/=" => old.checked_div(rhs).ok_or("division by zero")?,
                    _ => old.checked_rem(rhs).ok_or("division by zero")?,
                };
                self.set(&name, v);
                return Ok(v);
            }
        }
        self.or()
    }

    fn or(&mut self) -> Result<i64, String> {
        let mut v = self.and()?;
        while self.peek_op() == Some("||") {
            self.pos += 1;
            let r = self.and()?;
            v = i64::from(v != 0 || r != 0);
        }
        Ok(v)
    }

    fn and(&mut self) -> Result<i64, String> {
        let mut v = self.cmp()?;
        while self.peek_op() == Some("&&") {
            self.pos += 1;
            let r = self.cmp()?;
            v = i64::from(v != 0 && r != 0);
        }
        Ok(v)
    }

    fn cmp(&mut self) -> Result<i64, String> {
        let mut v = self.add()?;
        while let Some(op) = self.peek_op() {
            let op = op.to_owned();
            if !matches!(op.as_str(), "<" | ">" | "<=" | ">=" | "==" | "!=") {
                break;
            }
            self.pos += 1;
            let r = self.add()?;
            v = i64::from(match op.as_str() {
                "<" => v < r,
                ">" => v > r,
                "<=" => v <= r,
                ">=" => v >= r,
                "==" => v == r,
                _ => v != r,
            });
        }
        Ok(v)
    }

    fn add(&mut self) -> Result<i64, String> {
        let mut v = self.mul()?;
        while let Some(op) = self.peek_op() {
            let op = op.to_owned();
            if op != "+" && op != "-" {
                break;
            }
            self.pos += 1;
            let r = self.mul()?;
            v = if op == "+" { v + r } else { v - r };
        }
        Ok(v)
    }

    fn mul(&mut self) -> Result<i64, String> {
        let mut v = self.unary()?;
        while let Some(op) = self.peek_op() {
            let op = op.to_owned();
            if !matches!(op.as_str(), "*" | "/" | "%") {
                break;
            }
            self.pos += 1;
            let r = self.unary()?;
            v = match op.as_str() {
                "*" => v * r,
                "/" => v.checked_div(r).ok_or("division by zero")?,
                _ => v.checked_rem(r).ok_or("division by zero")?,
            };
        }
        Ok(v)
    }

    fn unary(&mut self) -> Result<i64, String> {
        match self.peek_op() {
            Some("-") => {
                self.pos += 1;
                Ok(-self.unary()?)
            }
            Some("+") => {
                self.pos += 1;
                self.unary()
            }
            Some("!") => {
                self.pos += 1;
                Ok(i64::from(self.unary()? == 0))
            }
            Some("++") | Some("--") => {
                let op = self.peek_op().expect("peeked").to_owned();
                self.pos += 1;
                let Some(ATok::Var(name)) = self.tokens.get(self.pos).cloned() else {
                    return Err("++/-- needs a variable".into());
                };
                self.pos += 1;
                let v = self.get(&name) + if op == "++" { 1 } else { -1 };
                self.set(&name, v);
                Ok(v)
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<i64, String> {
        match self.tokens.get(self.pos).cloned() {
            Some(ATok::Num(n)) => {
                self.pos += 1;
                Ok(n)
            }
            Some(ATok::Var(name)) => {
                self.pos += 1;
                let old = self.get(&name);
                match self.peek_op() {
                    Some("++") => {
                        self.pos += 1;
                        self.set(&name, old + 1);
                        Ok(old)
                    }
                    Some("--") => {
                        self.pos += 1;
                        self.set(&name, old - 1);
                        Ok(old)
                    }
                    _ => Ok(old),
                }
            }
            Some(ATok::Op(o)) if o == "(" => {
                self.pos += 1;
                let v = self.assign()?;
                if self.peek_op() != Some(")") {
                    return Err("expected )".into());
                }
                self.pos += 1;
                Ok(v)
            }
            other => Err(format!("unexpected arithmetic token {other:?}")),
        }
    }
}

/// Matches a glob pattern against text. In the pattern, `\x` is a literal
/// `x` (used to protect quoted regions), `*` matches any run, `?` one
/// character, `[abc]`/`[a-z]` a class.
///
/// # Examples
///
/// ```
/// assert!(minishell::expand::glob_match("*REGISTRY_HOST*", "A REGISTRY_HOST B"));
/// assert!(minishell::expand::glob_match(r"literal\*star", "literal*star"));
/// assert!(!minishell::expand::glob_match("pod-?", "pod-10"));
/// ```
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    glob_rec(&p, 0, &t, 0)
}

fn glob_rec(p: &[char], pi: usize, t: &[char], ti: usize) -> bool {
    if pi == p.len() {
        return ti == t.len();
    }
    match p[pi] {
        '\\' if pi + 1 < p.len() => {
            ti < t.len() && t[ti] == p[pi + 1] && glob_rec(p, pi + 2, t, ti + 1)
        }
        '*' => {
            for k in ti..=t.len() {
                if glob_rec(p, pi + 1, t, k) {
                    return true;
                }
            }
            false
        }
        '?' => ti < t.len() && glob_rec(p, pi + 1, t, ti + 1),
        '[' => {
            let close = p[pi..].iter().position(|c| *c == ']').map(|o| pi + o);
            match close {
                Some(end) if end > pi + 1 => {
                    if ti >= t.len() {
                        return false;
                    }
                    let body = &p[pi + 1..end];
                    let (negated, body) =
                        if body.first() == Some(&'^') || body.first() == Some(&'!') {
                            (true, &body[1..])
                        } else {
                            (false, body)
                        };
                    let mut matched = false;
                    let mut k = 0;
                    while k < body.len() {
                        if k + 2 < body.len() && body[k + 1] == '-' {
                            if t[ti] >= body[k] && t[ti] <= body[k + 2] {
                                matched = true;
                            }
                            k += 3;
                        } else {
                            if t[ti] == body[k] {
                                matched = true;
                            }
                            k += 1;
                        }
                    }
                    matched != negated && glob_rec(p, end + 1, t, ti + 1)
                }
                _ => ti < t.len() && t[ti] == '[' && glob_rec(p, pi + 1, t, ti + 1),
            }
        }
        c => ti < t.len() && t[ti] == c && glob_rec(p, pi + 1, t, ti + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    }

    #[test]
    fn basic_arithmetic() {
        let mut env = HashMap::new();
        assert_eq!(arith_eval("1 + 2 * 3", &mut env).unwrap(), 7);
        assert_eq!(arith_eval("(1 + 2) * 3", &mut env).unwrap(), 9);
        assert_eq!(arith_eval("10 / 3", &mut env).unwrap(), 3);
        assert_eq!(arith_eval("10 % 3", &mut env).unwrap(), 1);
        assert_eq!(arith_eval("-4 + 1", &mut env).unwrap(), -3);
    }

    #[test]
    fn comparisons_and_logic() {
        let mut env = env_with(&[("a", "3")]);
        assert_eq!(arith_eval("a >= 3", &mut env).unwrap(), 1);
        assert_eq!(arith_eval("a == 4", &mut env).unwrap(), 0);
        assert_eq!(arith_eval("a > 1 && a < 5", &mut env).unwrap(), 1);
        assert_eq!(arith_eval("!a", &mut env).unwrap(), 0);
    }

    #[test]
    fn increments_mutate_env() {
        let mut env = env_with(&[("n", "5")]);
        assert_eq!(arith_eval("n++", &mut env).unwrap(), 5);
        assert_eq!(env["n"], "6");
        assert_eq!(arith_eval("++n", &mut env).unwrap(), 7);
        assert_eq!(arith_eval("n--", &mut env).unwrap(), 7);
        assert_eq!(env["n"], "6");
    }

    #[test]
    fn assignments() {
        let mut env = HashMap::new();
        assert_eq!(arith_eval("x = 4", &mut env).unwrap(), 4);
        assert_eq!(arith_eval("x += 3", &mut env).unwrap(), 7);
        assert_eq!(env["x"], "7");
    }

    #[test]
    fn dollar_prefixed_vars_work() {
        let mut env = env_with(&[("total", "3")]);
        assert_eq!(arith_eval("$total * 2", &mut env).unwrap(), 6);
    }

    #[test]
    fn unset_variables_are_zero() {
        let mut env = HashMap::new();
        assert_eq!(arith_eval("missing + 1", &mut env).unwrap(), 1);
    }

    #[test]
    fn division_by_zero_is_error() {
        let mut env = HashMap::new();
        assert!(arith_eval("1 / 0", &mut env).is_err());
    }

    #[test]
    fn glob_basics() {
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("pod-*", "pod-abc"));
        assert!(!glob_match("pod-*", "rs-abc"));
        assert!(glob_match("*passed*", "unit_test_passed!"));
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "ac"));
    }

    #[test]
    fn glob_classes() {
        assert!(glob_match("pod-[0-9]", "pod-3"));
        assert!(!glob_match("pod-[0-9]", "pod-x"));
        assert!(glob_match("[!x]y", "ay"));
        assert!(!glob_match("[!x]y", "xy"));
    }

    #[test]
    fn escaped_glob_chars_are_literal() {
        assert!(glob_match(r"\*", "*"));
        assert!(!glob_match(r"\*", "x"));
        assert!(glob_match(r"a\?b", "a?b"));
    }
}
