//! The benchmark sandbox: external commands backed by the Kubernetes and
//! Envoy simulators. One sandbox = one isolated test environment, matching
//! the paper's per-problem clean-cluster guarantee (§2.1: "The test script
//! also includes a clean-up function ensuring the environment is reset
//! after each test").

use std::collections::HashMap;

use envoysim::{EnvoyConfig, RouteOutcome};
use kubesim::net::{curl, CurlError};
use kubesim::Cluster;
use yamlkit::Yaml;

use crate::interp::{ExecResult, Sandbox};

/// Sandbox hosting a fresh [`Cluster`] and optional Envoy proxy.
#[derive(Debug, Default)]
pub struct ClusterSandbox {
    /// The simulated Kubernetes cluster.
    pub cluster: Cluster,
    /// Loaded Envoy configuration (after `envoy -c file` / `envoy-start`).
    pub envoy: Option<EnvoyConfig>,
}

impl ClusterSandbox {
    /// Fresh sandbox with a new single-node cluster.
    pub fn new() -> ClusterSandbox {
        ClusterSandbox {
            cluster: Cluster::new(),
            envoy: None,
        }
    }

    fn run_curl(&mut self, args: &[String]) -> ExecResult {
        let mut silent = false;
        let mut out_file: Option<String> = None;
        let mut write_format: Option<String> = None;
        let mut url: Option<String> = None;
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            match a {
                "-s" | "--silent" | "-L" | "--location" | "-k" | "--insecure" | "-f" | "--fail"
                | "-I" | "--head" | "-4" | "-6" | "-v" => {
                    silent |= a == "-s" || a == "--silent";
                }
                "-o" | "--output" => {
                    i += 1;
                    out_file = args.get(i).cloned();
                }
                "-w" | "--write-out" => {
                    i += 1;
                    write_format = args.get(i).cloned();
                }
                "-m" | "--max-time" | "--connect-timeout" | "-H" | "--header" | "-X"
                | "--request" | "-d" | "--data" | "--retry" => {
                    i += 1; // consume the value
                }
                _ if a.starts_with('-') => {}
                _ => url = Some(a.to_owned()),
            }
            i += 1;
        }
        let Some(url) = url else {
            return ExecResult {
                stderr: "curl: no URL specified\n".into(),
                code: 2,
                ..Default::default()
            };
        };
        // A loaded Envoy config owns localhost listener ports.
        if let Some(status_body) = self.try_envoy(&url) {
            return render_curl(status_body, silent, out_file, write_format, self);
        }
        match curl(&self.cluster, &url) {
            Ok(resp) => render_curl(
                Ok((resp.status, resp.body)),
                silent,
                out_file,
                write_format,
                self,
            ),
            Err(e) => render_curl(Err(e), silent, out_file, write_format, self),
        }
    }

    /// Routes a URL through the loaded Envoy config when the host/port is
    /// one of its listeners.
    fn try_envoy(&self, url: &str) -> Option<Result<(u16, String), CurlError>> {
        let envoy = self.envoy.as_ref()?;
        let rest = url
            .trim_start_matches("http://")
            .trim_start_matches("https://");
        let (host_port, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        let (host, port) = match host_port.rsplit_once(':') {
            Some((h, p)) => (h, p.parse().unwrap_or(80u16)),
            None => (host_port, 80),
        };
        if !matches!(host, "localhost" | "127.0.0.1" | "0.0.0.0") {
            return None;
        }
        if !envoy.listeners.iter().any(|l| l.port == port) {
            return None;
        }
        Some(match envoy.route(port, host, path) {
            RouteOutcome::Cluster(name) => {
                // An upstream cluster answers 200 with a recognizable body.
                Ok((200, format!("upstream: {name}\n")))
            }
            RouteOutcome::DirectResponse(status, body) => Ok((status, body)),
            RouteOutcome::Redirect(to) => Ok((301, format!("redirect: {to}\n"))),
            RouteOutcome::NotFound => Ok((404, "not found\n".into())),
            RouteOutcome::NoListener => Err(CurlError::ConnectionRefused),
        })
    }

    fn run_minikube(&mut self, args: &[String]) -> ExecResult {
        match args.first().map(String::as_str) {
            Some("service") => {
                let mut name: Option<String> = None;
                let mut namespace = "default".to_owned();
                let mut url_mode = false;
                let mut i = 1;
                while i < args.len() {
                    match args[i].as_str() {
                        "-n" | "--namespace" => {
                            i += 1;
                            namespace = args.get(i).cloned().unwrap_or_default();
                        }
                        "--url" => url_mode = true,
                        a if !a.starts_with('-') => name = Some(a.to_owned()),
                        _ => {}
                    }
                    i += 1;
                }
                let Some(name) = name else {
                    return ExecResult { stderr: "usage: minikube service NAME\n".into(), code: 64, ..Default::default() };
                };
                let Some(svc) = self.cluster.get("Service", Some(&namespace), Some(&name)).pop() else {
                    return ExecResult {
                        stderr: format!("service '{name}' was not found in '{namespace}' namespace\n"),
                        code: 80,
                        ..Default::default()
                    };
                };
                let node_port = svc
                    .status
                    .get("nodePort")
                    .and_then(Yaml::as_i64)
                    .unwrap_or(30000);
                if url_mode {
                    return ExecResult {
                        stdout: format!("http://192.168.49.2:{node_port}\n"),
                        ..Default::default()
                    };
                }
                let mut out = String::new();
                out.push_str(&format!(
                    "|-----------|{name}|-------------|---------------------------|\n"
                ));
                out.push_str(&format!("* Starting tunnel for service {name}.\n"));
                out.push_str(&format!(
                    "* Opening service {namespace}/{name} in default browser...\n"
                ));
                // Holding the tunnel open blocks until interrupted.
                ExecResult { stdout: out, blocking: true, ..Default::default() }
            }
            Some("ip") => ExecResult { stdout: "192.168.49.2\n".into(), ..Default::default() },
            Some("status") => ExecResult {
                stdout: "minikube\ntype: Control Plane\nhost: Running\nkubelet: Running\napiserver: Running\nkubeconfig: Configured\n".into(),
                ..Default::default()
            },
            Some("start") | Some("delete") | Some("stop") => ExecResult {
                stdout: "* Done!\n".into(),
                ..Default::default()
            },
            Some("addons") => ExecResult { stdout: "* enabled\n".into(), ..Default::default() },
            other => ExecResult {
                stderr: format!("minikube: unknown command {other:?}\n"),
                code: 64,
                ..Default::default()
            },
        }
    }

    fn run_envoy(&mut self, args: &[String], files: &HashMap<String, String>) -> ExecResult {
        let mut config_file: Option<String> = None;
        let mut validate = false;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "-c" | "--config-path" => {
                    i += 1;
                    config_file = args.get(i).cloned();
                }
                "--mode" => {
                    i += 1;
                    validate = args.get(i).map(String::as_str) == Some("validate");
                }
                _ => {}
            }
            i += 1;
        }
        let Some(file) = config_file else {
            return ExecResult {
                stderr: "envoy: missing -c\n".into(),
                code: 1,
                ..Default::default()
            };
        };
        let Some(content) = files.get(&file) else {
            return ExecResult {
                stderr: format!("envoy: unable to read file: {file}\n"),
                code: 1,
                ..Default::default()
            };
        };
        match EnvoyConfig::parse(content) {
            Ok(cfg) => {
                if validate {
                    ExecResult {
                        stdout: format!("configuration '{file}' OK\n"),
                        ..Default::default()
                    }
                } else {
                    self.envoy = Some(cfg);
                    // A foreground proxy blocks; tests use `envoy-start` or
                    // `timeout` to background it.
                    ExecResult {
                        stdout: "starting main dispatch loop\n".into(),
                        blocking: true,
                        ..Default::default()
                    }
                }
            }
            Err(e) => ExecResult {
                stderr: format!("{e}\n"),
                code: 1,
                ..Default::default()
            },
        }
    }
}

fn render_curl(
    result: Result<(u16, String), CurlError>,
    silent: bool,
    out_file: Option<String>,
    write_format: Option<String>,
    sandbox: &mut ClusterSandbox,
) -> ExecResult {
    let _ = sandbox;
    match result {
        Ok((status, body)) => {
            let mut stdout = String::new();
            match out_file.as_deref() {
                Some("/dev/null") => {}
                Some(_f) => { /* body captured to VFS by caller via redirect; -o to files is rare */
                }
                None => stdout.push_str(&body),
            }
            if let Some(fmt) = write_format {
                stdout.push_str(&fmt.replace("%{http_code}", &status.to_string()));
            }
            ExecResult {
                stdout,
                ..Default::default()
            }
        }
        Err(e) => {
            let mut stdout = String::new();
            if let Some(fmt) = write_format {
                stdout.push_str(&fmt.replace("%{http_code}", "000"));
            }
            let stderr = if silent {
                String::new()
            } else {
                match &e {
                    CurlError::CouldNotResolve => "curl: (6) Could not resolve host\n".to_owned(),
                    CurlError::ConnectionRefused => "curl: (7) Failed to connect\n".to_owned(),
                    CurlError::EmptyReply => "curl: (52) Empty reply from server\n".to_owned(),
                    CurlError::Timeout => "curl: (28) Operation timed out\n".to_owned(),
                }
            };
            ExecResult {
                stdout,
                stderr,
                code: e.exit_code(),
                blocking: false,
            }
        }
    }
}

impl Sandbox for ClusterSandbox {
    fn run(
        &mut self,
        name: &str,
        args: &[String],
        stdin: &str,
        files: &mut HashMap<String, String>,
    ) -> Option<ExecResult> {
        match name {
            "kubectl" => {
                let snapshot = files.clone();
                let resolver = move |f: &str| snapshot.get(f).cloned();
                let r = kubesim::kubectl::run(&mut self.cluster, args, stdin, &resolver);
                Some(ExecResult {
                    stdout: r.stdout,
                    stderr: r.stderr,
                    code: r.code,
                    blocking: false,
                })
            }
            "curl" | "wget" => Some(self.run_curl(args)),
            "minikube" => Some(self.run_minikube(args)),
            "envoy" => Some(self.run_envoy(args, files)),
            "envoy-start" => {
                // Non-blocking variant used by the generated unit tests.
                let mut r = self.run_envoy(args, files);
                if r.blocking {
                    r.blocking = false;
                    r.stdout = "envoy started\n".into();
                }
                Some(r)
            }
            "istioctl" => {
                match args.first().map(String::as_str) {
                    // Applied Istio resources have already passed strict
                    // schema validation, so analyze always reports clean.
                    Some("analyze") => Some(ExecResult {
                        stdout: "\u{2714} No validation issues found when analyzing namespace: default.\n".into(),
                        ..Default::default()
                    }),
                    Some("version") => Some(ExecResult {
                        stdout: "client version: 1.20.0-sim\n".into(),
                        ..Default::default()
                    }),
                    _ => Some(ExecResult {
                        stderr: "istioctl: unknown command\n".into(),
                        code: 64,
                        ..Default::default()
                    }),
                }
            }
            "docker" => match args.first().map(String::as_str) {
                Some("ps") => Some(ExecResult {
                    stdout: "CONTAINER ID   IMAGE   STATUS\n".into(),
                    ..Default::default()
                }),
                _ => Some(ExecResult {
                    ..Default::default()
                }),
            },
            _ => None,
        }
    }

    fn sleep(&mut self, ms: u64) {
        self.cluster.advance(ms);
    }
}
