//! Lexer, word model and recursive-descent parser for the bash subset the
//! CloudEval-YAML unit-test scripts use.
//!
//! Supported syntax: simple commands with assignments and redirections,
//! pipelines (`|`), `&&`/`||` lists, `!` negation, `if/elif/else/fi`,
//! `for ... in ...; do ... done`, `while ... do ... done`, `(( ... ))`
//! arithmetic commands, `[[ ... ]]` conditionals, single/double quotes,
//! `$var`/`${var}`/`${var:-def}` expansion, `$(...)` and backtick command
//! substitution, `$(( ... ))` arithmetic expansion, and comments.

use std::fmt;

/// Parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseShellError {
    /// 1-based line.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseShellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shell parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseShellError {}

/// A piece of a word, tracking whether it was quoted (quoting suppresses
/// glob interpretation in `[[ ]]` patterns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Seg {
    /// Literal text; `quoted` is true inside quotes.
    Lit {
        /// The text.
        text: String,
        /// Whether the text came from inside quotes.
        quoted: bool,
    },
    /// `$name` or `${name}` (with optional `:-` default).
    Var {
        /// Variable name.
        name: String,
        /// `${name:-default}` fallback, if written.
        default: Option<String>,
        /// Inside double quotes?
        quoted: bool,
    },
    /// `$(...)` or backticks; the raw script inside.
    CmdSub {
        /// Unparsed script body.
        script: String,
        /// Inside double quotes?
        quoted: bool,
    },
    /// `$(( ... ))`.
    Arith {
        /// Raw expression text.
        expr: String,
    },
}

/// A (possibly multi-segment) shell word.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Word {
    /// Segments in order.
    pub segs: Vec<Seg>,
}

impl Word {
    /// A purely literal unquoted word.
    pub fn lit(text: &str) -> Word {
        Word {
            segs: vec![Seg::Lit {
                text: text.to_owned(),
                quoted: false,
            }],
        }
    }

    /// The word's text if it is a single unquoted literal (used to detect
    /// keywords like `if` and `then`).
    pub fn as_keyword(&self) -> Option<&str> {
        match self.segs.as_slice() {
            [Seg::Lit {
                text,
                quoted: false,
            }] => Some(text),
            _ => None,
        }
    }
}

/// Redirection operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedirOp {
    /// `> file`
    Out,
    /// `>> file`
    Append,
    /// `< file`
    In,
    /// `2> file`
    ErrOut,
    /// `2>> file`
    ErrAppend,
    /// `2>&1`
    ErrToOut,
    /// `&> file` (both streams)
    AllOut,
}

/// One redirection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Redirect {
    /// Operator.
    pub op: RedirOp,
    /// Target file word (unused for `2>&1`).
    pub target: Word,
}

/// Commands (the AST's statement level).
#[derive(Debug, Clone, PartialEq)]
pub enum Cmd {
    /// Assignments, argv words, redirections.
    Simple {
        /// Leading `NAME=value` assignments.
        assignments: Vec<(String, Word)>,
        /// Command and arguments.
        words: Vec<Word>,
        /// Redirections in order.
        redirects: Vec<Redirect>,
    },
    /// `left | right | ...`
    Pipeline(Vec<Cmd>),
    /// `a && b`, `a || b` — `ops[i]` joins `cmds[i]` to `cmds[i+1]`.
    AndOr {
        /// Constituent pipelines.
        cmds: Vec<Cmd>,
        /// `true` = `&&`, `false` = `||`.
        ops: Vec<bool>,
    },
    /// `! cmd`
    Not(Box<Cmd>),
    /// `if c; then t; elif c2; then t2; else e; fi`
    If {
        /// (condition, body) pairs: the `if` and every `elif`.
        arms: Vec<(Vec<Cmd>, Vec<Cmd>)>,
        /// `else` body.
        otherwise: Vec<Cmd>,
    },
    /// `for v in words; do body; done`
    For {
        /// Loop variable.
        var: String,
        /// Item words (expanded and split at run time).
        items: Vec<Word>,
        /// Loop body.
        body: Vec<Cmd>,
    },
    /// `while cond; do body; done`
    While {
        /// Condition list.
        cond: Vec<Cmd>,
        /// Body list.
        body: Vec<Cmd>,
    },
    /// `(( expr ))` — exit 0 when the expression is non-zero.
    Arith(String),
    /// `[[ ... ]]` — conditional expression, words kept raw.
    Cond(Vec<Word>),
    /// `break` / `continue`
    LoopCtl(bool),
}

/// Token stream element.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(Word),
    Op(&'static str),
    Newline,
    Arith(String),
    CondStart,
    CondEnd,
}

/// Tokenizes source into words and operators.
fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseShellError> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks: Vec<(Tok, usize)> = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                toks.push((Tok::Newline, line));
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '\\' if chars.get(i + 1) == Some(&'\n') => {
                line += 1;
                i += 2; // line continuation
            }
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            ';' => {
                toks.push((Tok::Newline, line));
                i += 1;
            }
            '&' if chars.get(i + 1) == Some(&'&') => {
                toks.push((Tok::Op("&&"), line));
                i += 2;
            }
            '&' if chars.get(i + 1) == Some(&'>') => {
                toks.push((Tok::Op("&>"), line));
                i += 2;
            }
            '|' if chars.get(i + 1) == Some(&'|') => {
                toks.push((Tok::Op("||"), line));
                i += 2;
            }
            '|' => {
                toks.push((Tok::Op("|"), line));
                i += 1;
            }
            '(' if chars.get(i + 1) == Some(&'(') => {
                let (expr, consumed, newlines) = read_until_double_close(&chars[i + 2..], line)?;
                toks.push((Tok::Arith(expr), line));
                line += newlines;
                i += 2 + consumed + 2;
            }
            '[' if chars.get(i + 1) == Some(&'[') => {
                toks.push((Tok::CondStart, line));
                i += 2;
            }
            ']' if chars.get(i + 1) == Some(&']') => {
                toks.push((Tok::CondEnd, line));
                i += 2;
            }
            '>' if chars.get(i + 1) == Some(&'>') => {
                toks.push((Tok::Op(">>"), line));
                i += 2;
            }
            '>' => {
                toks.push((Tok::Op(">"), line));
                i += 1;
            }
            '<' => {
                toks.push((Tok::Op("<"), line));
                i += 1;
            }
            '2' if chars.get(i + 1) == Some(&'>')
                && word_boundary_before(&toks)
                && chars.get(i + 2) == Some(&'&')
                && chars.get(i + 3) == Some(&'1') =>
            {
                toks.push((Tok::Op("2>&1"), line));
                i += 4;
            }
            '2' if chars.get(i + 1) == Some(&'>') && word_boundary_before(&toks) => {
                if chars.get(i + 2) == Some(&'>') {
                    toks.push((Tok::Op("2>>"), line));
                    i += 3;
                } else {
                    toks.push((Tok::Op("2>"), line));
                    i += 2;
                }
            }
            '!' if word_boundary_before(&toks)
                && chars.get(i + 1).is_some_and(|n| n.is_whitespace()) =>
            {
                toks.push((Tok::Op("!"), line));
                i += 1;
            }
            _ => {
                let (word, consumed, newlines) = lex_word(&chars[i..], line)?;
                toks.push((Tok::Word(word), line));
                line += newlines;
                i += consumed;
            }
        }
    }
    Ok(toks)
}

fn word_boundary_before(toks: &[(Tok, usize)]) -> bool {
    // `2>` is a redirection only at the start of a word.
    true_boundary(toks)
}

fn true_boundary(_toks: &[(Tok, usize)]) -> bool {
    true
}

fn read_until_double_close(
    chars: &[char],
    line: usize,
) -> Result<(String, usize, usize), ParseShellError> {
    let mut depth = 0i32;
    let mut out = String::new();
    let mut newlines = 0;
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == ')' && chars.get(i + 1) == Some(&')') && depth == 0 {
            return Ok((out, i, newlines));
        }
        match chars[i] {
            '(' => depth += 1,
            ')' => depth -= 1,
            '\n' => newlines += 1,
            _ => {}
        }
        out.push(chars[i]);
        i += 1;
    }
    Err(ParseShellError {
        line,
        message: "unterminated (( )) expression".into(),
    })
}

/// Reads one word starting at `chars[0]`; returns (word, chars consumed,
/// newlines inside quotes).
fn lex_word(chars: &[char], line: usize) -> Result<(Word, usize, usize), ParseShellError> {
    let mut segs: Vec<Seg> = Vec::new();
    let mut lit = String::new();
    let mut lit_quoted = false;
    let mut i = 0;
    let mut newlines = 0;
    let flush = |lit: &mut String, quoted: bool, segs: &mut Vec<Seg>| {
        if !lit.is_empty() {
            segs.push(Seg::Lit {
                text: std::mem::take(lit),
                quoted,
            });
        }
    };
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\r' | '\n' | ';' | '|' | '&' | '>' | '<' | '#' => break,
            ')' | '(' => break,
            ']' if chars.get(i + 1) == Some(&']') => break,
            '\'' => {
                flush(&mut lit, lit_quoted, &mut segs);
                lit_quoted = false;
                let mut j = i + 1;
                let mut s = String::new();
                while j < chars.len() && chars[j] != '\'' {
                    if chars[j] == '\n' {
                        newlines += 1;
                    }
                    s.push(chars[j]);
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(ParseShellError {
                        line,
                        message: "unterminated single quote".into(),
                    });
                }
                segs.push(Seg::Lit {
                    text: s,
                    quoted: true,
                });
                i = j + 1;
            }
            '"' => {
                flush(&mut lit, lit_quoted, &mut segs);
                lit_quoted = false;
                let (inner, consumed, nl) = lex_double_quoted(&chars[i + 1..], line)?;
                segs.extend(inner);
                newlines += nl;
                i += 1 + consumed;
            }
            '`' => {
                flush(&mut lit, lit_quoted, &mut segs);
                let mut j = i + 1;
                let mut s = String::new();
                while j < chars.len() && chars[j] != '`' {
                    if chars[j] == '\n' {
                        newlines += 1;
                    }
                    s.push(chars[j]);
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(ParseShellError {
                        line,
                        message: "unterminated backtick".into(),
                    });
                }
                segs.push(Seg::CmdSub {
                    script: s,
                    quoted: false,
                });
                i = j + 1;
            }
            '$' => {
                flush(&mut lit, lit_quoted, &mut segs);
                let (seg, consumed, nl) = lex_dollar(&chars[i..], line, false)?;
                segs.push(seg);
                newlines += nl;
                i += consumed;
            }
            '\\' => {
                if let Some(&next) = chars.get(i + 1) {
                    if next == '\n' {
                        newlines += 1;
                    } else {
                        lit.push(next);
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            c => {
                lit.push(c);
                i += 1;
            }
        }
    }
    flush(&mut lit, lit_quoted, &mut segs);
    if segs.is_empty() {
        return Err(ParseShellError {
            line,
            message: format!("empty word at {:?}", &chars[..chars.len().min(5)]),
        });
    }
    Ok((Word { segs }, i, newlines))
}

/// Lexes the inside of a double-quoted region up to the closing quote.
fn lex_double_quoted(
    chars: &[char],
    line: usize,
) -> Result<(Vec<Seg>, usize, usize), ParseShellError> {
    let mut segs = Vec::new();
    let mut lit = String::new();
    let mut i = 0;
    let mut newlines = 0;
    while i < chars.len() {
        match chars[i] {
            '"' => {
                if !lit.is_empty() || segs.is_empty() {
                    segs.push(Seg::Lit {
                        text: lit,
                        quoted: true,
                    });
                }
                return Ok((segs, i + 1, newlines));
            }
            '\\' if matches!(
                chars.get(i + 1),
                Some('"') | Some('\\') | Some('$') | Some('`')
            ) =>
            {
                lit.push(chars[i + 1]);
                i += 2;
            }
            '$' => {
                if !lit.is_empty() {
                    segs.push(Seg::Lit {
                        text: std::mem::take(&mut lit),
                        quoted: true,
                    });
                }
                let (seg, consumed, nl) = lex_dollar(&chars[i..], line, true)?;
                segs.push(seg);
                newlines += nl;
                i += consumed;
            }
            '`' => {
                if !lit.is_empty() {
                    segs.push(Seg::Lit {
                        text: std::mem::take(&mut lit),
                        quoted: true,
                    });
                }
                let mut j = i + 1;
                let mut s = String::new();
                while j < chars.len() && chars[j] != '`' {
                    s.push(chars[j]);
                    j += 1;
                }
                segs.push(Seg::CmdSub {
                    script: s,
                    quoted: true,
                });
                i = j + 1;
            }
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                lit.push(c);
                i += 1;
            }
        }
    }
    Err(ParseShellError {
        line,
        message: "unterminated double quote".into(),
    })
}

/// Lexes `$var`, `${var}`, `${var:-def}`, `$(cmd)`, `$((expr))`, `$?`.
fn lex_dollar(
    chars: &[char],
    line: usize,
    quoted: bool,
) -> Result<(Seg, usize, usize), ParseShellError> {
    debug_assert_eq!(chars[0], '$');
    match chars.get(1) {
        Some('(') if chars.get(2) == Some(&'(') => {
            let (expr, consumed, nl) = read_until_double_close(&chars[3..], line)?;
            Ok((Seg::Arith { expr }, 3 + consumed + 2, nl))
        }
        Some('(') => {
            // Balanced command substitution.
            let mut depth = 1;
            let mut j = 2;
            let mut s = String::new();
            let mut nl = 0;
            while j < chars.len() {
                match chars[j] {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            return Ok((Seg::CmdSub { script: s, quoted }, j + 1, nl));
                        }
                    }
                    '\n' => nl += 1,
                    _ => {}
                }
                s.push(chars[j]);
                j += 1;
            }
            Err(ParseShellError {
                line,
                message: "unterminated $( )".into(),
            })
        }
        Some('{') => {
            let mut j = 2;
            let mut s = String::new();
            while j < chars.len() && chars[j] != '}' {
                s.push(chars[j]);
                j += 1;
            }
            if j >= chars.len() {
                return Err(ParseShellError {
                    line,
                    message: "unterminated ${ }".into(),
                });
            }
            let (name, default) = match s.split_once(":-") {
                Some((n, d)) => (n.to_owned(), Some(d.to_owned())),
                None => (s, None),
            };
            Ok((
                Seg::Var {
                    name,
                    default,
                    quoted,
                },
                j + 1,
                0,
            ))
        }
        Some('?') => Ok((
            Seg::Var {
                name: "?".into(),
                default: None,
                quoted,
            },
            2,
            0,
        )),
        Some('#') => Ok((
            Seg::Var {
                name: "#".into(),
                default: None,
                quoted,
            },
            2,
            0,
        )),
        Some(c) if c.is_alphabetic() || *c == '_' => {
            let mut j = 1;
            let mut name = String::new();
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                name.push(chars[j]);
                j += 1;
            }
            Ok((
                Seg::Var {
                    name,
                    default: None,
                    quoted,
                },
                j,
                0,
            ))
        }
        _ => Ok((
            Seg::Lit {
                text: "$".into(),
                quoted,
            },
            1,
            0,
        )),
    }
}

/// Parses a script into a statement list.
///
/// # Errors
///
/// [`ParseShellError`] for unterminated quotes, missing `fi`/`done`, etc.
///
/// # Examples
///
/// ```
/// let prog = minishell::lang::parse("if [ 1 -eq 1 ]; then echo ok; fi").unwrap();
/// assert_eq!(prog.len(), 1);
/// ```
pub fn parse(src: &str) -> Result<Vec<Cmd>, ParseShellError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let list = p.parse_list(&[])?;
    if p.pos < p.toks.len() {
        let line = p.toks[p.pos].1;
        return Err(ParseShellError {
            line,
            message: "unexpected trailing tokens".into(),
        });
    }
    Ok(list)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos).map(|(_, l)| *l).unwrap_or(0)
    }

    fn peek_keyword(&self) -> Option<&str> {
        match self.peek() {
            Some(Tok::Word(w)) => w.as_keyword(),
            _ => None,
        }
    }

    fn eat_newlines(&mut self) {
        while matches!(self.peek(), Some(Tok::Newline)) {
            self.pos += 1;
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseShellError> {
        self.eat_newlines();
        if self.peek_keyword() == Some(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseShellError {
                line: self.line(),
                message: format!("expected `{kw}`"),
            })
        }
    }

    /// Parses statements until one of `terminators` (as a keyword) or EOF.
    fn parse_list(&mut self, terminators: &[&str]) -> Result<Vec<Cmd>, ParseShellError> {
        let mut cmds = Vec::new();
        loop {
            self.eat_newlines();
            match self.peek() {
                None => break,
                Some(Tok::Word(w)) => {
                    if let Some(kw) = w.as_keyword() {
                        if terminators.contains(&kw) {
                            break;
                        }
                    }
                }
                _ => {}
            }
            if self.peek().is_none() {
                break;
            }
            cmds.push(self.parse_and_or(terminators)?);
        }
        Ok(cmds)
    }

    fn parse_and_or(&mut self, terminators: &[&str]) -> Result<Cmd, ParseShellError> {
        let first = self.parse_pipeline(terminators)?;
        let mut cmds = vec![first];
        let mut ops = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Op("&&")) => {
                    self.pos += 1;
                    self.eat_newlines();
                    ops.push(true);
                    cmds.push(self.parse_pipeline(terminators)?);
                }
                Some(Tok::Op("||")) => {
                    self.pos += 1;
                    self.eat_newlines();
                    ops.push(false);
                    cmds.push(self.parse_pipeline(terminators)?);
                }
                _ => break,
            }
        }
        if cmds.len() == 1 {
            Ok(cmds.pop().expect("len 1"))
        } else {
            Ok(Cmd::AndOr { cmds, ops })
        }
    }

    fn parse_pipeline(&mut self, terminators: &[&str]) -> Result<Cmd, ParseShellError> {
        let negated = matches!(self.peek(), Some(Tok::Op("!")));
        if negated {
            self.pos += 1;
        }
        let first = self.parse_command(terminators)?;
        let mut cmds = vec![first];
        while matches!(self.peek(), Some(Tok::Op("|"))) {
            self.pos += 1;
            self.eat_newlines();
            cmds.push(self.parse_command(terminators)?);
        }
        let pipeline = if cmds.len() == 1 {
            cmds.pop().expect("len 1")
        } else {
            Cmd::Pipeline(cmds)
        };
        Ok(if negated {
            Cmd::Not(Box::new(pipeline))
        } else {
            pipeline
        })
    }

    fn parse_command(&mut self, terminators: &[&str]) -> Result<Cmd, ParseShellError> {
        self.eat_newlines();
        match self.peek() {
            Some(Tok::Arith(expr)) => {
                let e = expr.clone();
                self.pos += 1;
                Ok(Cmd::Arith(e))
            }
            Some(Tok::CondStart) => {
                self.pos += 1;
                let mut words = Vec::new();
                loop {
                    match self.peek() {
                        Some(Tok::CondEnd) => {
                            self.pos += 1;
                            break;
                        }
                        Some(Tok::Word(w)) => {
                            words.push(w.clone());
                            self.pos += 1;
                        }
                        Some(Tok::Op(op @ ("&&" | "||" | "!" | "<" | ">"))) => {
                            words.push(Word::lit(op));
                            self.pos += 1;
                        }
                        other => {
                            return Err(ParseShellError {
                                line: self.line(),
                                message: format!("unexpected token in [[ ]]: {other:?}"),
                            })
                        }
                    }
                }
                Ok(Cmd::Cond(words))
            }
            Some(Tok::Word(w)) => match w.as_keyword() {
                Some("if") => self.parse_if(),
                Some("for") => self.parse_for(),
                Some("while") => self.parse_while(),
                Some("break") => {
                    self.pos += 1;
                    Ok(Cmd::LoopCtl(true))
                }
                Some("continue") => {
                    self.pos += 1;
                    Ok(Cmd::LoopCtl(false))
                }
                _ => self.parse_simple(terminators),
            },
            other => Err(ParseShellError {
                line: self.line(),
                message: format!("unexpected token: {other:?}"),
            }),
        }
    }

    fn parse_if(&mut self) -> Result<Cmd, ParseShellError> {
        self.expect_keyword("if")?;
        let mut arms = Vec::new();
        let cond = self.parse_list(&["then"])?;
        self.expect_keyword("then")?;
        let body = self.parse_list(&["elif", "else", "fi"])?;
        arms.push((cond, body));
        let mut otherwise = Vec::new();
        loop {
            self.eat_newlines();
            match self.peek_keyword() {
                Some("elif") => {
                    self.pos += 1;
                    let c = self.parse_list(&["then"])?;
                    self.expect_keyword("then")?;
                    let b = self.parse_list(&["elif", "else", "fi"])?;
                    arms.push((c, b));
                }
                Some("else") => {
                    self.pos += 1;
                    otherwise = self.parse_list(&["fi"])?;
                }
                Some("fi") => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    return Err(ParseShellError {
                        line: self.line(),
                        message: "expected elif/else/fi".into(),
                    })
                }
            }
        }
        Ok(Cmd::If { arms, otherwise })
    }

    fn parse_for(&mut self) -> Result<Cmd, ParseShellError> {
        self.expect_keyword("for")?;
        let var = match self.peek() {
            Some(Tok::Word(w)) => {
                w.as_keyword()
                    .map(str::to_owned)
                    .ok_or_else(|| ParseShellError {
                        line: self.line(),
                        message: "bad for variable".into(),
                    })?
            }
            _ => {
                return Err(ParseShellError {
                    line: self.line(),
                    message: "for needs a variable".into(),
                })
            }
        };
        self.pos += 1;
        self.expect_keyword("in")?;
        let mut items = Vec::new();
        while let Some(Tok::Word(w)) = self.peek() {
            if w.as_keyword() == Some("do") {
                break;
            }
            items.push(w.clone());
            self.pos += 1;
        }
        self.expect_keyword("do")?;
        let body = self.parse_list(&["done"])?;
        self.expect_keyword("done")?;
        Ok(Cmd::For { var, items, body })
    }

    fn parse_while(&mut self) -> Result<Cmd, ParseShellError> {
        self.expect_keyword("while")?;
        let cond = self.parse_list(&["do"])?;
        self.expect_keyword("do")?;
        let body = self.parse_list(&["done"])?;
        self.expect_keyword("done")?;
        Ok(Cmd::While { cond, body })
    }

    fn parse_simple(&mut self, _terminators: &[&str]) -> Result<Cmd, ParseShellError> {
        let mut assignments = Vec::new();
        let mut words: Vec<Word> = Vec::new();
        let mut redirects = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Word(w)) => {
                    // NAME=value before the command word is an assignment.
                    if words.is_empty() {
                        if let Some((name, rest)) = split_assignment(w) {
                            assignments.push((name, rest));
                            self.pos += 1;
                            continue;
                        }
                    }
                    words.push(w.clone());
                    self.pos += 1;
                }
                Some(Tok::Op(op @ (">" | ">>" | "<" | "2>" | "2>>" | "&>"))) => {
                    let op = match *op {
                        ">" => RedirOp::Out,
                        ">>" => RedirOp::Append,
                        "<" => RedirOp::In,
                        "2>" => RedirOp::ErrOut,
                        "2>>" => RedirOp::ErrAppend,
                        _ => RedirOp::AllOut,
                    };
                    self.pos += 1;
                    let target = match self.peek() {
                        Some(Tok::Word(w)) => w.clone(),
                        _ => {
                            return Err(ParseShellError {
                                line: self.line(),
                                message: "redirection needs a target".into(),
                            })
                        }
                    };
                    self.pos += 1;
                    redirects.push(Redirect { op, target });
                }
                Some(Tok::Op("2>&1")) => {
                    self.pos += 1;
                    redirects.push(Redirect {
                        op: RedirOp::ErrToOut,
                        target: Word::default(),
                    });
                }
                _ => break,
            }
        }
        if words.is_empty() && assignments.is_empty() {
            return Err(ParseShellError {
                line: self.line(),
                message: "empty command".into(),
            });
        }
        Ok(Cmd::Simple {
            assignments,
            words,
            redirects,
        })
    }
}

/// Splits `NAME=rest` when the word starts with a literal assignment
/// prefix. The value keeps the remaining segments.
fn split_assignment(w: &Word) -> Option<(String, Word)> {
    let Seg::Lit {
        text,
        quoted: false,
    } = w.segs.first()?
    else {
        return None;
    };
    let eq = text.find('=')?;
    let name = &text[..eq];
    if name.is_empty()
        || !name.chars().all(|c| c.is_alphanumeric() || c == '_')
        || name.chars().next().is_some_and(|c| c.is_numeric())
    {
        return None;
    }
    let mut value_segs = Vec::new();
    if eq + 1 < text.len() {
        value_segs.push(Seg::Lit {
            text: text[eq + 1..].to_owned(),
            quoted: false,
        });
    }
    value_segs.extend(w.segs[1..].iter().cloned());
    Some((name.to_owned(), Word { segs: value_segs }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_simple_command() {
        let prog = parse("kubectl apply -f labeled_code.yaml").unwrap();
        let Cmd::Simple { words, .. } = &prog[0] else {
            panic!()
        };
        assert_eq!(words.len(), 4);
    }

    #[test]
    fn parses_assignment_with_cmdsub() {
        let prog = parse("pods=$(kubectl get pods -o name)").unwrap();
        let Cmd::Simple {
            assignments, words, ..
        } = &prog[0]
        else {
            panic!()
        };
        assert!(words.is_empty());
        assert_eq!(assignments[0].0, "pods");
        assert!(matches!(assignments[0].1.segs[0], Seg::CmdSub { .. }));
    }

    #[test]
    fn parses_pipeline_and_andor() {
        let prog = parse("cat f | grep x && echo yes || echo no").unwrap();
        let Cmd::AndOr { cmds, ops } = &prog[0] else {
            panic!("{prog:?}")
        };
        assert_eq!(cmds.len(), 3);
        assert_eq!(ops, &vec![true, false]);
        assert!(matches!(cmds[0], Cmd::Pipeline(_)));
    }

    #[test]
    fn parses_if_elif_else() {
        let prog = parse("if [ \"$a\" == \"b\" ]; then\n  echo 1\nelif [ -z \"$a\" ]; then\n  echo 2\nelse\n  echo 3\nfi\n").unwrap();
        let Cmd::If { arms, otherwise } = &prog[0] else {
            panic!()
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(otherwise.len(), 1);
    }

    #[test]
    fn parses_double_bracket_cond() {
        let prog =
            parse("if [[ $ns == \"development\" && $x == *\"HOST\"* ]]; then echo ok; fi").unwrap();
        let Cmd::If { arms, .. } = &prog[0] else {
            panic!()
        };
        let Cmd::Cond(words) = &arms[0].0[0] else {
            panic!("{:?}", arms[0].0)
        };
        assert!(words.len() >= 5);
    }

    #[test]
    fn parses_arith_command_and_expansion() {
        let prog = parse("((passed_tests++))\nx=$((1 + 2))").unwrap();
        assert!(matches!(&prog[0], Cmd::Arith(e) if e.trim() == "passed_tests++"));
        let Cmd::Simple { assignments, .. } = &prog[1] else {
            panic!()
        };
        assert!(matches!(&assignments[0].1.segs[0], Seg::Arith { expr } if expr.trim() == "1 + 2"));
    }

    #[test]
    fn parses_for_loop() {
        let prog = parse("for i in a b c; do echo $i; done").unwrap();
        let Cmd::For { var, items, body } = &prog[0] else {
            panic!()
        };
        assert_eq!(var, "i");
        assert_eq!(items.len(), 3);
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn parses_while_loop_with_break() {
        let prog = parse("while true; do break; done").unwrap();
        let Cmd::While { body, .. } = &prog[0] else {
            panic!()
        };
        assert!(matches!(body[0], Cmd::LoopCtl(true)));
    }

    #[test]
    fn parses_redirections() {
        let prog = parse("cmd > out.txt 2>&1\ncmd2 >> log 2> err < in").unwrap();
        let Cmd::Simple { redirects, .. } = &prog[0] else {
            panic!()
        };
        assert_eq!(redirects.len(), 2);
        assert_eq!(redirects[0].op, RedirOp::Out);
        assert_eq!(redirects[1].op, RedirOp::ErrToOut);
        let Cmd::Simple { redirects, .. } = &prog[1] else {
            panic!()
        };
        assert_eq!(
            redirects.iter().map(|r| r.op).collect::<Vec<_>>(),
            vec![RedirOp::Append, RedirOp::ErrOut, RedirOp::In]
        );
    }

    #[test]
    fn multiline_double_quote_is_one_word() {
        let prog = parse("echo \"line1\nline2\" | kubectl apply -f -").unwrap();
        let Cmd::Pipeline(cmds) = &prog[0] else {
            panic!("{prog:?}")
        };
        let Cmd::Simple { words, .. } = &cmds[0] else {
            panic!()
        };
        assert_eq!(words.len(), 2);
    }

    #[test]
    fn dollar_variants() {
        let prog = parse("echo $? ${HOME} ${X:-fallback} $(ls) `pwd`").unwrap();
        let Cmd::Simple { words, .. } = &prog[0] else {
            panic!()
        };
        assert_eq!(words.len(), 6);
        assert!(
            matches!(&words[3].segs[0], Seg::Var { name, default: Some(d), .. } if name == "X" && d == "fallback")
        );
    }

    #[test]
    fn comments_are_ignored() {
        let prog = parse("echo hi # a comment\n# whole line\necho bye").unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn negation() {
        let prog = parse("! grep -q foo file").unwrap();
        assert!(matches!(prog[0], Cmd::Not(_)));
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(parse("echo \"oops").is_err());
        assert!(parse("echo 'oops").is_err());
        assert!(parse("x=$(echo ").is_err());
    }

    #[test]
    fn missing_fi_errors() {
        assert!(parse("if true; then echo hi").is_err());
    }

    #[test]
    fn timeout_style_command() {
        let prog = parse("timeout -s INT 8s minikube service nginx-service > bash_output.txt 2>&1")
            .unwrap();
        let Cmd::Simple {
            words, redirects, ..
        } = &prog[0]
        else {
            panic!()
        };
        assert_eq!(words.len(), 7);
        assert_eq!(redirects.len(), 2);
    }
}
