//! # minishell
//!
//! A bash-subset interpreter that runs CloudEval-YAML unit-test scripts
//! deterministically against the simulated cluster.
//!
//! The paper's function-level score executes hand-written bash scripts
//! (Appendix C) that `kubectl apply` the candidate YAML, poll cluster
//! state, curl endpoints, and finally `echo unit_test_passed`. This crate
//! interprets those scripts with:
//!
//! * a faithful-enough language core: pipelines, `&&`/`||`, `if`/`for`/
//!   `while`, `[[ ]]` with glob and regex matching, `(( ))` arithmetic,
//!   command substitution, redirections, and a virtual filesystem;
//! * builtins (`echo`, `grep`, `test`, `sleep`, `timeout`, `cut`, ...);
//! * a [`Sandbox`] trait for external commands, with [`ClusterSandbox`]
//!   wiring `kubectl`/`curl`/`minikube`/`envoy`/`istioctl` to the
//!   `kubesim` and `envoysim` simulators;
//! * virtual time: `sleep 15` advances the simulated cluster clock, so a
//!   minutes-long script finishes in microseconds.
//!
//! # Examples
//!
//! Running the paper's Appendix C.1-style check end to end:
//!
//! ```
//! use minishell::{ClusterSandbox, Interp};
//!
//! let manifest = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  labels:\n    app: nginx\nspec:\n  containers:\n  - name: c\n    image: nginx\n";
//! let script = "\
//! kubectl apply -f labeled_code.yaml
//! kubectl wait --for=condition=Ready pod -l app=nginx --timeout=60s
//! phase=$(kubectl get pod web -o jsonpath={.status.phase})
//! if [ \"$phase\" == \"Running\" ]; then
//!   echo unit_test_passed
//! fi";
//!
//! let mut sandbox = ClusterSandbox::new();
//! let mut shell = Interp::new(&mut sandbox);
//! shell.files.insert("labeled_code.yaml".into(), manifest.into());
//! let outcome = shell.run_script(script).unwrap();
//! assert!(outcome.combined.contains("unit_test_passed"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expand;
mod interp;
pub mod lang;
pub mod regex;
mod sandbox;

pub use interp::{
    EmptySandbox, ExecResult, Interp, RunOutcome, Sandbox, ScriptOutcome, ShellError,
};
pub use sandbox::ClusterSandbox;

/// Convenience: runs a unit-test script with the candidate YAML mounted at
/// `labeled_code.yaml` in a fresh sandbox, returning the outcome.
///
/// # Errors
///
/// Propagates [`ShellError`] from parsing or fuel exhaustion.
pub fn run_unit_test(script: &str, candidate_yaml: &str) -> Result<ScriptOutcome, ShellError> {
    let mut sandbox = ClusterSandbox::new();
    let mut shell = Interp::new(&mut sandbox);
    shell
        .files
        .insert("labeled_code.yaml".to_owned(), candidate_yaml.to_owned());
    shell.run_script(script)
}
