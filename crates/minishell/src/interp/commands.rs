//! Builtin commands and external-command dispatch.

use crate::interp::{Interp, ShellError};
use crate::regex::Regex;

/// Result of resolving and running a single command.
#[derive(Debug)]
pub enum RunOutcome {
    /// Command ran; streams captured.
    Captured {
        /// stdout
        out: String,
        /// stderr
        err: String,
        /// exit code
        code: i32,
    },
    /// The `exit` builtin was invoked.
    Exit(i32),
}

fn captured(out: impl Into<String>, err: impl Into<String>, code: i32) -> RunOutcome {
    RunOutcome::Captured {
        out: out.into(),
        err: err.into(),
        code,
    }
}

impl Interp<'_> {
    /// Runs argv\[0\] with arguments: builtins first, then the sandbox.
    pub(crate) fn run_command(
        &mut self,
        argv: &[String],
        stdin: &str,
        outer_err: &mut String,
    ) -> Result<RunOutcome, ShellError> {
        let name = argv[0].as_str();
        let args = &argv[1..];
        Ok(match name {
            "echo" => self.builtin_echo(args),
            "printf" => builtin_printf(args),
            "cat" => self.builtin_cat(args, stdin),
            "grep" => self.builtin_grep(args, stdin),
            "test" | "[" => {
                let mut args = args.to_vec();
                if name == "[" && args.last().map(String::as_str) == Some("]") {
                    args.pop();
                }
                let words: Vec<crate::lang::Word> = args.iter().map(|a| quoted_word(a)).collect();
                let mut scratch_out = String::new();
                let mut scratch_err = String::new();
                let status =
                    self.eval_cond_words_plain(&words, &mut scratch_out, &mut scratch_err)?;
                captured("", scratch_err, status)
            }
            "sleep" => {
                let secs: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(1.0);
                let ms = (secs * 1000.0) as u64;
                self.total_sleep_ms += ms;
                self.sandbox.sleep(ms);
                captured("", "", 0)
            }
            "exit" => {
                let code = args
                    .first()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(self.last_status);
                return Ok(RunOutcome::Exit(code));
            }
            "true" | ":" => captured("", "", 0),
            "false" => captured("", "", 1),
            "wc" => builtin_wc(args, stdin),
            "head" | "tail" => self.builtin_head_tail(name, args, stdin),
            "cut" => builtin_cut(args, stdin),
            "tr" => builtin_tr(args, stdin),
            "sort" => {
                let mut lines: Vec<&str> = stdin.lines().collect();
                lines.sort_unstable();
                if args.contains(&"-r".to_owned()) {
                    lines.reverse();
                }
                captured(join_lines(&lines), "", 0)
            }
            "uniq" => {
                let mut out = String::new();
                let mut prev: Option<&str> = None;
                for line in stdin.lines() {
                    if prev != Some(line) {
                        out.push_str(line);
                        out.push('\n');
                    }
                    prev = Some(line);
                }
                captured(out, "", 0)
            }
            "seq" => {
                let nums: Vec<i64> = args.iter().filter_map(|a| a.parse().ok()).collect();
                let (lo, hi) = match nums.as_slice() {
                    [hi] => (1, *hi),
                    [lo, hi] => (*lo, *hi),
                    _ => (1, 0),
                };
                let out: Vec<String> = (lo..=hi).map(|n| n.to_string()).collect();
                captured(
                    join_lines(&out.iter().map(String::as_str).collect::<Vec<_>>()),
                    "",
                    0,
                )
            }
            "basename" => {
                let p = args.first().cloned().unwrap_or_default();
                captured(format!("{}\n", p.rsplit('/').next().unwrap_or(&p)), "", 0)
            }
            "dirname" => {
                let p = args.first().cloned().unwrap_or_default();
                let d = p.rsplit_once('/').map(|(d, _)| d).unwrap_or(".");
                captured(format!("{d}\n"), "", 0)
            }
            "date" => captured("2024-01-01T00:00:00Z\n", "", 0),
            "export" => {
                for a in args {
                    if let Some((k, v)) = a.split_once('=') {
                        self.vars.insert(k.to_owned(), v.to_owned());
                    }
                }
                captured("", "", 0)
            }
            "unset" => {
                for a in args {
                    self.vars.remove(a);
                }
                captured("", "", 0)
            }
            "set" | "shopt" => captured("", "", 0),
            "which" | "command" => {
                let target = args
                    .iter()
                    .find(|a| !a.starts_with('-'))
                    .cloned()
                    .unwrap_or_default();
                captured(format!("/usr/bin/{target}\n"), "", 0)
            }
            "sed" => builtin_sed(args, stdin),
            "awk" => builtin_awk(args, stdin),
            "tee" => {
                for a in args.iter().filter(|a| !a.starts_with('-')) {
                    self.files.insert(a.clone(), stdin.to_owned());
                }
                captured(stdin, "", 0)
            }
            "timeout" => return self.builtin_timeout(args, stdin, outer_err),
            "rm" | "touch" | "mkdir" | "chmod" => {
                for a in args.iter().filter(|a| !a.starts_with('-')) {
                    if name == "rm" {
                        self.files.remove(a);
                    } else if name == "touch" {
                        self.files.entry(a.clone()).or_default();
                    }
                }
                captured("", "", 0)
            }
            _ => {
                match self.sandbox.run(name, args, stdin, &mut self.files) {
                    Some(r) => {
                        if r.blocking {
                            // Un-timed-out blocking commands behave like a
                            // command that ran until interrupted.
                            RunOutcome::Captured {
                                out: r.stdout,
                                err: r.stderr,
                                code: r.code,
                            }
                        } else {
                            RunOutcome::Captured {
                                out: r.stdout,
                                err: r.stderr,
                                code: r.code,
                            }
                        }
                    }
                    None => captured("", format!("bash: {name}: command not found\n"), 127),
                }
            }
        })
    }

    fn builtin_echo(&self, args: &[String]) -> RunOutcome {
        let mut newline = true;
        let mut escapes = false;
        let mut rest = args;
        loop {
            match rest.first().map(String::as_str) {
                Some("-n") => {
                    newline = false;
                    rest = &rest[1..];
                }
                Some("-e") => {
                    escapes = true;
                    rest = &rest[1..];
                }
                Some("-ne") | Some("-en") => {
                    newline = false;
                    escapes = true;
                    rest = &rest[1..];
                }
                _ => break,
            }
        }
        let mut s = rest.join(" ");
        if escapes {
            s = s.replace("\\n", "\n").replace("\\t", "\t");
        }
        if newline {
            s.push('\n');
        }
        captured(s, "", 0)
    }

    fn builtin_cat(&self, args: &[String], stdin: &str) -> RunOutcome {
        let files: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
        if files.is_empty() {
            return captured(stdin, "", 0);
        }
        let mut out = String::new();
        for f in files {
            match self.files.get(f.as_str()) {
                Some(content) => out.push_str(content),
                None => return captured(out, format!("cat: {f}: No such file or directory\n"), 1),
            }
        }
        captured(out, "", 0)
    }

    fn builtin_grep(&self, args: &[String], stdin: &str) -> RunOutcome {
        let mut quiet = false;
        let mut count = false;
        let mut only = false;
        let mut invert = false;
        let mut ignore_case = false;
        let mut pattern: Option<String> = None;
        let mut files: Vec<String> = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            match a {
                "-q" | "--quiet" | "--silent" => quiet = true,
                "-c" | "--count" => count = true,
                "-o" | "--only-matching" => only = true,
                "-v" | "--invert-match" => invert = true,
                "-i" | "--ignore-case" => ignore_case = true,
                "-E" | "-e" | "--line-buffered" | "-F" | "-a" => {
                    if a == "-e" {
                        i += 1;
                        pattern = args.get(i).cloned();
                    }
                }
                _ if a.starts_with('-') && a.len() > 1 && pattern.is_some() => {}
                _ if pattern.is_none() => pattern = Some(a.to_owned()),
                _ => files.push(a.to_owned()),
            }
            i += 1;
        }
        let Some(pattern) = pattern else {
            return captured("", "usage: grep PATTERN [FILE]\n", 2);
        };
        let haystack = if files.is_empty() {
            stdin.to_owned()
        } else {
            let mut s = String::new();
            for f in &files {
                match self.files.get(f) {
                    Some(c) => s.push_str(c),
                    None => {
                        return captured("", format!("grep: {f}: No such file or directory\n"), 2)
                    }
                }
            }
            s
        };
        let pat = if ignore_case {
            pattern.to_lowercase()
        } else {
            pattern.clone()
        };
        let re = Regex::new(&pat).ok();
        let line_matches = |line: &str| -> bool {
            let l = if ignore_case {
                line.to_lowercase()
            } else {
                line.to_owned()
            };
            match &re {
                Some(re) => re.is_match(&l),
                None => l.contains(&pat), // unparsable pattern: fixed string
            }
        };
        let mut matched_lines: Vec<&str> = Vec::new();
        for line in haystack.lines() {
            if line_matches(line) != invert {
                matched_lines.push(line);
            }
        }
        let any = !matched_lines.is_empty();
        let code = if any { 0 } else { 1 };
        if quiet {
            return captured("", "", code);
        }
        if count {
            return captured(format!("{}\n", matched_lines.len()), "", code);
        }
        if only {
            let mut out = String::new();
            if let Some(re) = &re {
                for line in &matched_lines {
                    let l = if ignore_case {
                        line.to_lowercase()
                    } else {
                        (*line).to_owned()
                    };
                    for m in re.find_all(&l) {
                        out.push_str(m);
                        out.push('\n');
                    }
                }
            }
            return captured(out, "", code);
        }
        captured(join_lines(&matched_lines), "", code)
    }

    fn builtin_head_tail(&self, name: &str, args: &[String], stdin: &str) -> RunOutcome {
        let mut n: usize = 10;
        let mut files: Vec<String> = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if a == "-n" {
                i += 1;
                n = args
                    .get(i)
                    .and_then(|s| s.trim_start_matches('-').parse().ok())
                    .unwrap_or(10);
            } else if let Some(num) = a.strip_prefix("-n") {
                n = num.parse().unwrap_or(10);
            } else if let Some(num) = a.strip_prefix('-') {
                if let Ok(v) = num.parse() {
                    n = v;
                }
            } else {
                files.push(a.to_owned());
            }
            i += 1;
        }
        let content = if files.is_empty() {
            stdin.to_owned()
        } else {
            files
                .iter()
                .filter_map(|f| self.files.get(f))
                .cloned()
                .collect::<Vec<_>>()
                .join("")
        };
        let lines: Vec<&str> = content.lines().collect();
        let selected: Vec<&str> = if name == "head" {
            lines.iter().take(n).copied().collect()
        } else {
            lines.iter().rev().take(n).rev().copied().collect()
        };
        captured(join_lines(&selected), "", 0)
    }

    fn builtin_timeout(
        &mut self,
        args: &[String],
        stdin: &str,
        outer_err: &mut String,
    ) -> Result<RunOutcome, ShellError> {
        let mut i = 0;
        // Skip `-s SIGNAL` / `--signal=..` / `-k ..`.
        while i < args.len() {
            match args[i].as_str() {
                "-s" | "--signal" | "-k" | "--kill-after" => i += 2,
                a if a.starts_with("--signal=") || a.starts_with("--kill-after=") => i += 1,
                _ => break,
            }
        }
        let duration = args.get(i).cloned().unwrap_or_default();
        let ms = parse_duration_secs(&duration)
            .map(|s| (s * 1000.0) as u64)
            .unwrap_or(1000);
        i += 1;
        let inner: Vec<String> = args[i..].to_vec();
        if inner.is_empty() {
            return Ok(captured("", "timeout: missing command\n", 125));
        }
        self.total_sleep_ms += ms;
        let name = inner[0].clone();
        let inner_args = inner[1..].to_vec();
        // Builtins under timeout run to completion; sandbox commands may
        // report `blocking`, which timeout converts to exit 124.
        match self.sandbox.run(&name, &inner_args, stdin, &mut self.files) {
            Some(r) => {
                self.sandbox.sleep(ms);
                let code = if r.blocking { 124 } else { r.code };
                Ok(RunOutcome::Captured {
                    out: r.stdout,
                    err: r.stderr,
                    code,
                })
            }
            None => {
                let argv: Vec<String> = inner;
                self.sandbox.sleep(ms);
                self.run_command(&argv, stdin, outer_err)
            }
        }
    }

    /// `[ ... ]` evaluation where every word is already expanded text.
    fn eval_cond_words_plain(
        &mut self,
        words: &[crate::lang::Word],
        out: &mut String,
        err: &mut String,
    ) -> Result<i32, ShellError> {
        self.eval_cond(words, out, err)
    }
}

/// Wraps pre-expanded text as a quoted word so `[` arguments are not
/// re-expanded (they came in expanded already). Operators must stay
/// recognizable as keywords, so bare operator-looking strings stay unquoted.
fn quoted_word(text: &str) -> crate::lang::Word {
    let ops = [
        "==", "=", "!=", "-eq", "-ne", "-lt", "-le", "-gt", "-ge", "-z", "-n", "-f", "-e", "-s",
        "-d", "-a", "-o", "!", "(", ")", "<", ">", "=~",
    ];
    if ops.contains(&text) {
        crate::lang::Word::lit(text)
    } else {
        crate::lang::Word {
            segs: vec![crate::lang::Seg::Lit {
                text: text.to_owned(),
                quoted: true,
            }],
        }
    }
}

fn parse_duration_secs(s: &str) -> Option<f64> {
    let s = s.trim();
    if let Some(n) = s.strip_suffix('s') {
        n.parse().ok()
    } else if let Some(n) = s.strip_suffix('m') {
        n.parse::<f64>().ok().map(|v| v * 60.0)
    } else if let Some(n) = s.strip_suffix('h') {
        n.parse::<f64>().ok().map(|v| v * 3600.0)
    } else {
        s.parse().ok()
    }
}

fn join_lines(lines: &[&str]) -> String {
    if lines.is_empty() {
        String::new()
    } else {
        let mut s = lines.join("\n");
        s.push('\n');
        s
    }
}

fn builtin_printf(args: &[String]) -> RunOutcome {
    let Some(format) = args.first() else {
        return captured("", "usage: printf FORMAT [ARGS]\n", 2);
    };
    let mut out = String::new();
    let mut arg_iter = args[1..].iter();
    let mut chars = format.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => {}
            },
            '%' => match chars.next() {
                Some('s') => out.push_str(arg_iter.next().map(String::as_str).unwrap_or("")),
                Some('d') => {
                    let v: i64 = arg_iter
                        .next()
                        .and_then(|a| a.trim().parse().ok())
                        .unwrap_or(0);
                    out.push_str(&v.to_string());
                }
                Some('%') => out.push('%'),
                Some(other) => {
                    out.push('%');
                    out.push(other);
                }
                None => {}
            },
            c => out.push(c),
        }
    }
    captured(out, "", 0)
}

fn builtin_wc(args: &[String], stdin: &str) -> RunOutcome {
    let lines = stdin.lines().count();
    let words = stdin.split_whitespace().count();
    let bytes = stdin.len();
    let out = if args.contains(&"-l".to_owned()) {
        format!("{lines}\n")
    } else if args.contains(&"-w".to_owned()) {
        format!("{words}\n")
    } else if args.contains(&"-c".to_owned()) {
        format!("{bytes}\n")
    } else {
        format!("{lines} {words} {bytes}\n")
    };
    captured(out, "", 0)
}

fn builtin_cut(args: &[String], stdin: &str) -> RunOutcome {
    let mut delim = '\t';
    let mut fields: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "-d" {
            i += 1;
            delim = args.get(i).and_then(|s| s.chars().next()).unwrap_or('\t');
        } else if let Some(d) = a.strip_prefix("-d") {
            delim = d.chars().next().unwrap_or('\t');
        } else if a == "-f" {
            i += 1;
            fields = parse_field_list(args.get(i).map(String::as_str).unwrap_or(""));
        } else if let Some(f) = a.strip_prefix("-f") {
            fields = parse_field_list(f);
        }
        i += 1;
    }
    let mut out = String::new();
    for line in stdin.lines() {
        let parts: Vec<&str> = line.split(delim).collect();
        let selected: Vec<&str> = fields
            .iter()
            .filter_map(|f| parts.get(f.saturating_sub(1)).copied())
            .collect();
        out.push_str(&selected.join(&delim.to_string()));
        out.push('\n');
    }
    captured(out, "", 0)
}

fn parse_field_list(spec: &str) -> Vec<usize> {
    spec.split(',')
        .filter_map(|p| p.trim().parse().ok())
        .collect()
}

fn builtin_tr(args: &[String], stdin: &str) -> RunOutcome {
    let delete = args.first().map(String::as_str) == Some("-d");
    if delete {
        let set = args.get(1).cloned().unwrap_or_default();
        let out: String = stdin.chars().filter(|c| !set.contains(*c)).collect();
        return captured(out, "", 0);
    }
    let from: Vec<char> = args
        .first()
        .map(|s| s.chars().collect())
        .unwrap_or_default();
    let to: Vec<char> = args.get(1).map(|s| s.chars().collect()).unwrap_or_default();
    let out: String = stdin
        .chars()
        .map(|c| {
            from.iter()
                .position(|f| *f == c)
                .and_then(|i| to.get(i.min(to.len().saturating_sub(1))))
                .copied()
                .unwrap_or(c)
        })
        .collect();
    captured(out, "", 0)
}

/// `sed s/pat/replacement/[g]` over stdin (fixed-string patterns).
fn builtin_sed(args: &[String], stdin: &str) -> RunOutcome {
    let script = args
        .iter()
        .find(|a| a.starts_with("s") && a.len() > 1)
        .cloned()
        .unwrap_or_default();
    let mut parts = script.splitn(4, ['/', '|', '#']);
    let cmd = parts.next().unwrap_or("");
    if cmd != "s" {
        return captured(stdin, "", 0);
    }
    let pat = parts.next().unwrap_or("");
    let rep = parts.next().unwrap_or("");
    let flags = parts.next().unwrap_or("");
    let global = flags.contains('g');
    let mut out = String::new();
    for line in stdin.lines() {
        let replaced = if global {
            line.replace(pat, rep)
        } else {
            line.replacen(pat, rep, 1)
        };
        out.push_str(&replaced);
        out.push('\n');
    }
    captured(out, "", 0)
}

/// `awk '{print $N}'` and `awk -F<d> '{print $N}'`.
fn builtin_awk(args: &[String], stdin: &str) -> RunOutcome {
    let mut sep: Option<char> = None;
    let mut program = String::new();
    for a in args {
        if let Some(d) = a.strip_prefix("-F") {
            sep = d.chars().next();
        } else if !a.starts_with('-') {
            program = a.clone();
        }
    }
    let field: Option<usize> = program
        .trim()
        .trim_start_matches('{')
        .trim_end_matches('}')
        .trim()
        .strip_prefix("print $")
        .and_then(|n| n.trim().parse().ok());
    let mut out = String::new();
    for line in stdin.lines() {
        let parts: Vec<&str> = match sep {
            Some(d) => line.split(d).collect(),
            None => line.split_whitespace().collect(),
        };
        match field {
            Some(0) => out.push_str(line),
            Some(n) => out.push_str(parts.get(n - 1).copied().unwrap_or("")),
            None => out.push_str(line),
        }
        out.push('\n');
    }
    captured(out, "", 0)
}
