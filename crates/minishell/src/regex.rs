//! A small backtracking regex engine for `grep` and `[[ =~ ]]`.
//!
//! Supported: literals, `.`, `*`, `+`, `?`, `^`, `$`, character classes
//! `[a-z]` / `[^...]`, alternation `|`, groups `(...)`, and the escapes
//! `\d \w \s \. \\` etc. Quantifiers are greedy. This covers every pattern
//! in the generated unit-test corpus; exotic PCRE is out of scope.

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Regex {
    alternatives: Vec<Vec<Piece>>,
    anchored_start: bool,
    anchored_end: bool,
}

#[derive(Debug, Clone)]
enum Atom {
    Char(char),
    Any,
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
    Group(Vec<Vec<Piece>>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Quant {
    One,
    Star,
    Plus,
    Opt,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    quant: Quant,
}

impl Regex {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem.
    ///
    /// # Examples
    ///
    /// ```
    /// let re = minishell::regex::Regex::new("unit_test_pass(ed)?").unwrap();
    /// assert!(re.is_match("cn1000_unit_test_passed"));
    /// assert!(!re.is_match("unit test failed"));
    /// ```
    pub fn new(pattern: &str) -> Result<Regex, String> {
        let mut chars: Vec<char> = pattern.chars().collect();
        let anchored_start = chars.first() == Some(&'^');
        if anchored_start {
            chars.remove(0);
        }
        let anchored_end = chars.last() == Some(&'$')
            && !ends_with_escape(&chars[..chars.len().saturating_sub(1)]);
        if anchored_end {
            chars.pop();
        }
        let (alternatives, used) = parse_alternatives(&chars, 0)?;
        if used != chars.len() {
            return Err(format!("unexpected ')' at {used}"));
        }
        Ok(Regex {
            alternatives,
            anchored_start,
            anchored_end,
        })
    }

    /// Whether the pattern matches anywhere in `text` (or at the anchors).
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// First match as (start, end) byte-ish indices over the char vector.
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        let chars: Vec<char> = text.chars().collect();
        let starts: Vec<usize> = if self.anchored_start {
            vec![0]
        } else {
            (0..=chars.len()).collect()
        };
        for start in starts {
            for alt in &self.alternatives {
                if let Some(end) = match_pieces(alt, &chars, start) {
                    if !self.anchored_end || end == chars.len() {
                        return Some((start, end));
                    }
                    // Greedy match may overshoot the anchor; try to find an
                    // exact-to-end match by requiring end == len.
                    if match_to_end(alt, &chars, start) {
                        return Some((start, chars.len()));
                    }
                }
            }
        }
        None
    }

    /// All non-overlapping matched substrings (for `grep -o`).
    pub fn find_all<'a>(&self, text: &'a str) -> Vec<&'a str> {
        let mut out = Vec::new();
        let chars: Vec<char> = text.chars().collect();
        let mut pos = 0;
        while pos <= chars.len() {
            let slice: String = chars[pos..].iter().collect();
            match self.find(&slice) {
                Some((s, e)) if e > s => {
                    let byte_start = char_to_byte(text, pos + s);
                    let byte_end = char_to_byte(text, pos + e);
                    out.push(&text[byte_start..byte_end]);
                    pos += e.max(1);
                }
                Some((_, _)) => pos += 1,
                None => break,
            }
            if self.anchored_start {
                break;
            }
        }
        out
    }
}

fn char_to_byte(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

fn ends_with_escape(chars: &[char]) -> bool {
    let mut n = 0;
    for c in chars.iter().rev() {
        if *c == '\\' {
            n += 1;
        } else {
            break;
        }
    }
    n % 2 == 1
}

fn parse_alternatives(chars: &[char], mut i: usize) -> Result<(Vec<Vec<Piece>>, usize), String> {
    let mut alternatives = Vec::new();
    let mut current = Vec::new();
    while i < chars.len() {
        match chars[i] {
            ')' => break,
            '|' => {
                alternatives.push(std::mem::take(&mut current));
                i += 1;
            }
            _ => {
                let (atom, used) = parse_atom(chars, i)?;
                i = used;
                let quant = match chars.get(i) {
                    Some('*') => {
                        i += 1;
                        Quant::Star
                    }
                    Some('+') => {
                        i += 1;
                        Quant::Plus
                    }
                    Some('?') => {
                        i += 1;
                        Quant::Opt
                    }
                    _ => Quant::One,
                };
                current.push(Piece { atom, quant });
            }
        }
    }
    alternatives.push(current);
    Ok((alternatives, i))
}

fn parse_atom(chars: &[char], i: usize) -> Result<(Atom, usize), String> {
    match chars[i] {
        '.' => Ok((Atom::Any, i + 1)),
        '(' => {
            let (alts, used) = parse_alternatives(chars, i + 1)?;
            if chars.get(used) != Some(&')') {
                return Err("unbalanced group".into());
            }
            Ok((Atom::Group(alts), used + 1))
        }
        '[' => {
            let mut j = i + 1;
            let negated = chars.get(j) == Some(&'^');
            if negated {
                j += 1;
            }
            let mut ranges = Vec::new();
            let mut first = true;
            while j < chars.len() && (chars[j] != ']' || first) {
                first = false;
                let lo = if chars[j] == '\\' && j + 1 < chars.len() {
                    j += 1;
                    chars[j]
                } else {
                    chars[j]
                };
                if chars.get(j + 1) == Some(&'-') && chars.get(j + 2).is_some_and(|c| *c != ']') {
                    ranges.push((lo, chars[j + 2]));
                    j += 3;
                } else {
                    ranges.push((lo, lo));
                    j += 1;
                }
            }
            if chars.get(j) != Some(&']') {
                return Err("unterminated character class".into());
            }
            Ok((Atom::Class { negated, ranges }, j + 1))
        }
        '\\' => {
            let next = *chars.get(i + 1).ok_or("dangling escape")?;
            let atom = match next {
                'd' => Atom::Class {
                    negated: false,
                    ranges: vec![('0', '9')],
                },
                'w' => Atom::Class {
                    negated: false,
                    ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                },
                's' => Atom::Class {
                    negated: false,
                    ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                },
                c => Atom::Char(c),
            };
            Ok((atom, i + 2))
        }
        c => Ok((Atom::Char(c), i + 1)),
    }
}

fn atom_matches(atom: &Atom, c: char) -> bool {
    match atom {
        Atom::Char(a) => *a == c,
        Atom::Any => c != '\n',
        Atom::Class { negated, ranges } => {
            let inside = ranges.iter().any(|(lo, hi)| c >= *lo && c <= *hi);
            inside != *negated
        }
        Atom::Group(_) => false,
    }
}

/// Returns the end position of a match of `pieces` starting at `pos`, or
/// `None`. Greedy with backtracking.
fn match_pieces(pieces: &[Piece], chars: &[char], pos: usize) -> Option<usize> {
    let Some((piece, rest)) = pieces.split_first() else {
        return Some(pos);
    };
    match (&piece.atom, piece.quant) {
        (Atom::Group(alts), quant) => {
            let try_once = |p: usize| -> Vec<usize> {
                alts.iter()
                    .filter_map(|alt| match_pieces(alt, chars, p))
                    .collect()
            };
            match quant {
                Quant::One => {
                    for end in try_once(pos) {
                        if let Some(e) = match_pieces(rest, chars, end) {
                            return Some(e);
                        }
                    }
                    None
                }
                Quant::Opt => {
                    for end in try_once(pos) {
                        if let Some(e) = match_pieces(rest, chars, end) {
                            return Some(e);
                        }
                    }
                    match_pieces(rest, chars, pos)
                }
                Quant::Star | Quant::Plus => {
                    // Collect reachable positions via repeated application.
                    let mut frontier = vec![pos];
                    let mut reachable = vec![pos];
                    let mut guard = 0;
                    while let Some(p) = frontier.pop() {
                        guard += 1;
                        if guard > 10_000 {
                            break;
                        }
                        for end in try_once(p) {
                            if end > p && !reachable.contains(&end) {
                                reachable.push(end);
                                frontier.push(end);
                            }
                        }
                    }
                    reachable.sort_unstable();
                    let min_reps_met = |p: &usize| quant == Quant::Star || *p > pos;
                    for p in reachable.iter().rev().filter(|p| min_reps_met(p)) {
                        if let Some(e) = match_pieces(rest, chars, *p) {
                            return Some(e);
                        }
                    }
                    None
                }
            }
        }
        (atom, Quant::One) => {
            if pos < chars.len() && atom_matches(atom, chars[pos]) {
                match_pieces(rest, chars, pos + 1)
            } else {
                None
            }
        }
        (atom, Quant::Opt) => {
            if pos < chars.len() && atom_matches(atom, chars[pos]) {
                if let Some(e) = match_pieces(rest, chars, pos + 1) {
                    return Some(e);
                }
            }
            match_pieces(rest, chars, pos)
        }
        (atom, Quant::Star | Quant::Plus) => {
            let mut max = pos;
            while max < chars.len() && atom_matches(atom, chars[max]) {
                max += 1;
            }
            let min = if piece.quant == Quant::Plus {
                pos + 1
            } else {
                pos
            };
            let mut k = max;
            loop {
                if k < min {
                    return None;
                }
                if let Some(e) = match_pieces(rest, chars, k) {
                    return Some(e);
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
        }
    }
}

/// Like [`match_pieces`] but requires consuming exactly to the end.
fn match_to_end(pieces: &[Piece], chars: &[char], pos: usize) -> bool {
    // Simple exhaustive search: try every split point via match_pieces on
    // prefixes. For the small patterns in test scripts this is plenty.
    match_ends(pieces, chars, pos).contains(&chars.len())
}

fn match_ends(pieces: &[Piece], chars: &[char], pos: usize) -> Vec<usize> {
    let Some((piece, rest)) = pieces.split_first() else {
        return vec![pos];
    };
    let mut ends = Vec::new();
    let advance: Vec<usize> = match (&piece.atom, piece.quant) {
        (Atom::Group(alts), quant) => {
            let mut positions = vec![pos];
            if quant == Quant::Star || quant == Quant::Plus {
                let mut frontier = vec![pos];
                while let Some(p) = frontier.pop() {
                    for alt in alts {
                        for e in match_ends(alt, chars, p) {
                            if e > p && !positions.contains(&e) {
                                positions.push(e);
                                frontier.push(e);
                            }
                        }
                    }
                }
                if quant == Quant::Plus {
                    positions.retain(|p| *p > pos);
                }
            } else {
                let mut one: Vec<usize> = alts
                    .iter()
                    .flat_map(|alt| match_ends(alt, chars, pos))
                    .collect();
                if quant == Quant::Opt {
                    one.push(pos);
                }
                positions = one;
            }
            positions
        }
        (atom, Quant::One) => {
            if pos < chars.len() && atom_matches(atom, chars[pos]) {
                vec![pos + 1]
            } else {
                vec![]
            }
        }
        (atom, Quant::Opt) => {
            let mut v = vec![pos];
            if pos < chars.len() && atom_matches(atom, chars[pos]) {
                v.push(pos + 1);
            }
            v
        }
        (atom, q) => {
            let mut v = if q == Quant::Star { vec![pos] } else { vec![] };
            let mut p = pos;
            while p < chars.len() && atom_matches(atom, chars[p]) {
                p += 1;
                v.push(p);
            }
            v
        }
    };
    for a in advance {
        ends.extend(match_ends(rest, chars, a));
    }
    ends.sort_unstable();
    ends.dedup();
    ends
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, text: &str) -> bool {
        Regex::new(pattern).unwrap().is_match(text)
    }

    #[test]
    fn literals_and_substring() {
        assert!(m("unit_test_passed", "echo cn1000_unit_test_passed done"));
        assert!(!m("unit_test_passed", "unit test passed"));
    }

    #[test]
    fn anchors() {
        assert!(m("^pod/", "pod/web"));
        assert!(!m("^pod/", "my pod/web"));
        assert!(m("passed$", "test passed"));
        assert!(!m("passed$", "passed test"));
        assert!(m("^exact$", "exact"));
        assert!(!m("^exact$", "exactly"));
    }

    #[test]
    fn dot_and_star() {
        assert!(m("a.c", "abc"));
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m(".*", ""));
        assert!(m("a.*z", "a middle z"));
    }

    #[test]
    fn plus_and_opt() {
        assert!(m("ab+c", "abbc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("colou?r", "color"));
        assert!(m("colou?r", "colour"));
    }

    #[test]
    fn classes() {
        assert!(m("[0-9]+", "port 8080"));
        assert!(!m("[0-9]+", "no digits"));
        assert!(m("[^a-z]", "ABC"));
        assert!(m("\\d+\\.\\d+", "version 1.25"));
        assert!(m("\\w+@\\w+", "user@host"));
    }

    #[test]
    fn groups_and_alternation() {
        assert!(m("(ab)+", "ababab"));
        assert!(m("cat|dog", "hotdog stand"));
        assert!(m("^(http|https)://", "https://x"));
        assert!(!m("^(http|https)://", "ftp://x"));
    }

    #[test]
    fn escaped_specials() {
        assert!(m("10\\.0\\.0\\.1", "ip 10.0.0.1 here"));
        assert!(!m("10\\.0\\.0\\.1", "10x0y0z1"));
        assert!(m("\\$\\{var\\}", "${var}"));
    }

    #[test]
    fn find_all_non_overlapping() {
        let re = Regex::new("[0-9]+").unwrap();
        assert_eq!(re.find_all("a1b22c333"), vec!["1", "22", "333"]);
    }

    #[test]
    fn grep_like_paper_pattern() {
        assert!(m(
            "Opening service default/nginx-service in default browser",
            "*  Opening service default/nginx-service in default browser...",
        ));
    }

    #[test]
    fn bad_patterns_error() {
        assert!(Regex::new("(unclosed").is_err());
        assert!(Regex::new("[unclosed").is_err());
        assert!(Regex::new("dangling\\").is_err());
    }
}
