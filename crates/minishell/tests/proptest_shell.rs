//! Property tests for the shell substrate: arithmetic agrees with a
//! reference evaluator, glob matching obeys its algebra, and the
//! interpreter is total (no panics) on generated scripts.

use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Arithmetic: compare against a tiny independent evaluator on a safe
// expression grammar (no division, to dodge div-by-zero).
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Expr {
    Num(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn render(&self) -> String {
        match self {
            Expr::Num(n) => n.to_string(),
            Expr::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            Expr::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            Expr::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            Expr::Num(n) => *n,
            Expr::Add(a, b) => a.eval() + b.eval(),
            Expr::Sub(a, b) => a.eval() - b.eval(),
            Expr::Mul(a, b) => a.eval() * b.eval(),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (-50i64..50).prop_map(Expr::Num);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arithmetic_matches_reference(e in arb_expr()) {
        let mut env = HashMap::new();
        let got = minishell::expand::arith_eval(&e.render(), &mut env).unwrap();
        prop_assert_eq!(got, e.eval());
    }

    /// `echo $((expr))` prints the same value the evaluator computes.
    #[test]
    fn arith_expansion_matches(e in arb_expr()) {
        let mut sandbox = minishell::EmptySandbox;
        let mut sh = minishell::Interp::new(&mut sandbox);
        let out = sh.run_script(&format!("echo $(({}))", e.render())).unwrap();
        prop_assert_eq!(out.stdout.trim(), e.eval().to_string());
    }

    /// Literal patterns (no metacharacters) match exactly themselves.
    #[test]
    fn glob_literal_is_equality(s in "[a-zA-Z0-9_.:-]{0,16}", t in "[a-zA-Z0-9_.:-]{0,16}") {
        prop_assert_eq!(minishell::expand::glob_match(&s, &t), s == t);
    }

    /// `*s*` matches exactly the strings containing s.
    #[test]
    fn glob_star_wrap_is_contains(s in "[a-z]{1,6}", t in "[a-z]{0,20}") {
        let pattern = format!("*{s}*");
        prop_assert_eq!(minishell::expand::glob_match(&pattern, &t), t.contains(&s));
    }

    /// A fully-escaped pattern matches exactly its unescaped self.
    #[test]
    fn glob_escaped_matches_self(s in "[a-z*?\\[\\]]{0,12}") {
        let escaped: String = s.chars().flat_map(|c| ['\\', c]).collect();
        prop_assert!(minishell::expand::glob_match(&escaped, &s));
    }

    /// Variable round trip through assignment and expansion.
    #[test]
    fn assignment_round_trips(value in "[a-zA-Z0-9_.:/-]{0,24}") {
        let mut sandbox = minishell::EmptySandbox;
        let mut sh = minishell::Interp::new(&mut sandbox);
        let out = sh.run_script(&format!("v='{value}'\necho \"$v\"")).unwrap();
        prop_assert_eq!(out.stdout.trim_end_matches('\n'), value);
    }

    /// The interpreter never panics on echo/grep pipelines with arbitrary
    /// words (totality under fuzzing).
    #[test]
    fn interpreter_is_total_on_pipelines(words in prop::collection::vec("[a-zA-Z0-9_.:-]{1,8}", 1..5), pat in "[a-z]{1,4}") {
        let script = format!("echo {} | grep {pat} | wc -l", words.join(" "));
        let mut sandbox = minishell::EmptySandbox;
        let mut sh = minishell::Interp::new(&mut sandbox);
        let out = sh.run_script(&script).unwrap();
        let n: i64 = out.stdout.trim().parse().unwrap();
        prop_assert!(n == 0 || n == 1);
    }

    /// Regex literals behave as substring search.
    #[test]
    fn regex_literal_is_contains(needle in "[a-z]{1,8}", hay in "[a-z ]{0,30}") {
        let re = minishell::regex::Regex::new(&needle).unwrap();
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }
}
