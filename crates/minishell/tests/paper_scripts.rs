//! End-to-end tests: the three sample unit tests from the paper's
//! Appendix C, run verbatim (modulo environment-specific sleeps) against
//! the simulated cluster.

use minishell::{ClusterSandbox, Interp};

fn run_with_files(script: &str, files: &[(&str, &str)]) -> minishell::ScriptOutcome {
    let mut sandbox = ClusterSandbox::new();
    let mut shell = Interp::new(&mut sandbox);
    for (name, content) in files {
        shell
            .files
            .insert((*name).to_owned(), (*content).to_owned());
    }
    shell.run_script(script).expect("script runs")
}

/// Appendix C.1: DaemonSet with hostPort probe, env vars, resource limits.
#[test]
fn sample_1_daemonset() {
    let labeled = "\
apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: kube-registry-proxy-modified
spec:
  selector:
    matchLabels:
      app: kube-registry-modified
  template:
    metadata:
      labels:
        app: kube-registry-modified
    spec:
      containers:
      - name: kube-registry-proxy-modified
        image: nginx:latest
        resources:
          limits:
            cpu: 100m
            memory: 50Mi
        env:
        - name: REGISTRY_HOST
          value: kube-registry-modified.svc.cluster.local
        - name: REGISTRY_PORT
          value: \"5000\"
        ports:
        - name: registry
          containerPort: 80
          hostPort: 5000
";
    let script = r#"
kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app=kube-registry-modified --timeout=60s
passed_tests=0
total_tests=3
pods=$(kubectl get pods -l app=kube-registry-modified --output=jsonpath={.items..metadata.name})
host_ip=$(kubectl get pod $pods -o=jsonpath='{.status.hostIP}')
curl_output=$(curl -s -o /dev/null -w "%{http_code}" $host_ip:5000)
if [ "$curl_output" == "200" ]; then
    ((passed_tests++))
else
    exit 1
fi
env_vars=$(kubectl get pods --selector=app=kube-registry-modified -o=jsonpath='{.items[0].spec.containers[0].env[*].name}')
if [[ $env_vars == *"REGISTRY_HOST"* && $env_vars == *"REGISTRY_PORT"* ]]; then
    ((passed_tests++))
fi
cpu_limit=$(kubectl get pod $pods -o=jsonpath='{.spec.containers[0].resources.limits.cpu}')
memory_limit=$(kubectl get pod $pods -o=jsonpath='{.spec.containers[0].resources.limits.memory}')
if [ "$cpu_limit" == "100m" ] && [ "$memory_limit" == "50Mi" ]; then
    ((passed_tests++))
fi
if [ $passed_tests -eq $total_tests ]; then
    echo unit_test_passed
fi
"#;
    let outcome = run_with_files(script, &[("labeled_code.yaml", labeled)]);
    assert!(
        outcome.combined.contains("unit_test_passed"),
        "transcript:\n{}",
        outcome.combined
    );
}

/// Appendix C.1 negative control: wrong resource limits fail the test.
#[test]
fn sample_1_fails_on_wrong_limits() {
    let labeled_bad = "\
apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: kube-registry-proxy-modified
spec:
  selector:
    matchLabels:
      app: kube-registry-modified
  template:
    metadata:
      labels:
        app: kube-registry-modified
    spec:
      containers:
      - name: p
        image: nginx:latest
        resources:
          limits:
            cpu: 200m
            memory: 50Mi
        ports:
        - containerPort: 80
          hostPort: 5000
";
    let script = r#"
kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app=kube-registry-modified --timeout=60s
pods=$(kubectl get pods -l app=kube-registry-modified --output=jsonpath={.items..metadata.name})
cpu_limit=$(kubectl get pod $pods -o=jsonpath='{.spec.containers[0].resources.limits.cpu}')
if [ "$cpu_limit" == "100m" ]; then
    echo unit_test_passed
fi
"#;
    let outcome = run_with_files(script, &[("labeled_code.yaml", labeled_bad)]);
    assert!(!outcome.combined.contains("unit_test_passed"));
}

/// Appendix C.2: deployment context piped from echo, LoadBalancer service,
/// `minikube service` under `timeout` with output grepping.
#[test]
fn sample_2_loadbalancer_service() {
    let labeled = "\
apiVersion: v1
kind: Service
metadata:
  name: nginx-service
spec:
  selector:
    app: nginx
  ports:
  - name: http
    port: 80
    targetPort: 80
  type: LoadBalancer
";
    let script = r#"
echo "apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx-deployment
spec:
  replicas: 3
  selector:
    matchLabels:
      app: nginx
  template:
    metadata:
      labels:
        app: nginx
    spec:
      containers:
      - name: nginx-container
        image: nginx:latest
        ports:
        - containerPort: 80" | kubectl apply -f -
kubectl wait --for=condition=ready deployment --all --timeout=15s
kubectl apply -f labeled_code.yaml
sleep 15
kubectl get svc
timeout -s INT 8s minikube service nginx-service > bash_output.txt 2>&1
cat bash_output.txt
grep "Opening service default/nginx-service in default browser..." bash_output.txt && echo unit_test_passed
"#;
    let outcome = run_with_files(script, &[("labeled_code.yaml", labeled)]);
    assert!(
        outcome.combined.contains("unit_test_passed"),
        "transcript:\n{}",
        outcome.combined
    );
}

/// Appendix C.3: the Ingress debugging problem. The corrected YAML must
/// apply cleanly and describe must show the backend.
#[test]
fn sample_3_ingress_debugging() {
    let fixed = "\
apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: minimal-ingress
  annotations:
    nginx.ingress.kubernetes.io/rewrite-target: /
spec:
  rules:
  - http:
      paths:
      - path: /
        pathType: Prefix
        backend:
          service:
            name: test-app
            port:
              number: 5000
";
    let script = r#"
kubectl apply -f labeled_code.yaml
kubectl wait --namespace default --for=condition=SYNCED ingress --all --timeout=15s
kubectl describe ingress minimal-ingress | grep "test-app:5000" && echo unit_test_passed
"#;
    let outcome = run_with_files(script, &[("labeled_code.yaml", fixed)]);
    assert!(
        outcome.combined.contains("unit_test_passed"),
        "transcript:\n{}",
        outcome.combined
    );
}

/// Appendix C.3 negative control: the buggy original YAML is rejected with
/// the strict-decoding error and the test cannot pass.
#[test]
fn sample_3_buggy_yaml_rejected() {
    let buggy = "\
apiVersion: networking.k8s.io/v1
kind: Ingress
metadata:
  name: test-ingress
  annotations:
    nginx.ingress.kubernetes.io/rewrite-target: /
spec:
  rules:
  - http:
      paths:
      - path: /
        backend:
          serviceName: test-app
          servicePort: 5000
";
    let script = r#"
kubectl apply -f labeled_code.yaml
kubectl describe ingress test-ingress | grep "test-app:5000" && echo unit_test_passed
"#;
    let outcome = run_with_files(script, &[("labeled_code.yaml", buggy)]);
    assert!(!outcome.combined.contains("unit_test_passed"));
    assert!(
        outcome.combined.contains("strict decoding error"),
        "expected API-server-style error, got:\n{}",
        outcome.combined
    );
    assert!(outcome
        .combined
        .contains("unknown field \"spec.rules[0].http.paths[0].backend.serviceName\""));
}

/// The RoleBinding example from Figure 1.
#[test]
fn figure_1_rolebinding() {
    let labeled = "\
apiVersion: rbac.authorization.k8s.io/v1
kind: RoleBinding
metadata:
  name: read-secrets
  namespace: development
subjects:
- kind: User
  name: dave
  apiGroup: rbac.authorization.k8s.io
roleRef:
  kind: ClusterRole
  name: secret-reader
  apiGroup: rbac.authorization.k8s.io
";
    let script = r#"
kubectl create ns development
kubectl apply -f labeled_code.yaml
namespace=$(kubectl get rolebinding read-secrets -n development -o jsonpath={.metadata.namespace})
subject_name=$(kubectl get rolebinding read-secrets -n development -o jsonpath={.subjects[0].name})
role_ref_name=$(kubectl get rolebinding read-secrets -n development -o jsonpath={.roleRef.name})
if [[ $namespace == "development" && $subject_name == "dave" && $role_ref_name == "secret-reader" ]]; then
    echo cn1000_unit_test_passed
fi
"#;
    let outcome = run_with_files(script, &[("labeled_code.yaml", labeled)]);
    assert!(
        outcome.combined.contains("cn1000_unit_test_passed"),
        "transcript:\n{}",
        outcome.combined
    );
}

/// Envoy flow: validate config, start the proxy, probe routing via curl.
#[test]
fn envoy_validate_and_route() {
    let script = r#"
envoy --mode validate -c labeled_code.yaml || exit 1
envoy-start -c labeled_code.yaml
code=$(curl -s -o /dev/null -w "%{http_code}" localhost:10000/)
body=$(curl -s localhost:10000/api)
if [ "$code" == "200" ]; then
  if [[ $body == *"service_backend"* ]]; then
    echo unit_test_passed
  fi
fi
"#;
    let outcome = run_with_files(script, &[("labeled_code.yaml", envoysim::SAMPLE_CONFIG)]);
    assert!(
        outcome.combined.contains("unit_test_passed"),
        "transcript:\n{}",
        outcome.combined
    );
}

/// Shell semantics: loops, arithmetic, pipes, redirection, subshells.
#[test]
fn shell_kitchen_sink() {
    let script = r#"
total=0
for i in 1 2 3 4; do
  ((total += i))
done
echo total=$total
count=$(seq 1 5 | wc -l)
echo count=$count
echo "a,b,c" | cut -d, -f2
x=hello
while [ ${#x} -eq 0 ]; do echo never; done
if [ "$x" != "hello" ]; then echo bad; else echo good; fi
printf "%s=%d\n" answer 42
echo "one two three" | tr ' ' '\n' | sort | head -n 1
"#;
    let outcome = run_with_files(script, &[]);
    assert!(outcome.stdout.contains("total=10"), "{}", outcome.stdout);
    assert!(outcome.stdout.contains("count=5"));
    assert!(outcome.stdout.contains("b\n"));
    assert!(outcome.stdout.contains("good"));
    assert!(outcome.stdout.contains("answer=42"));
    assert!(outcome.stdout.contains("one"));
}

/// Runaway loops hit the fuel limit instead of hanging.
#[test]
fn runaway_loop_is_stopped() {
    let mut sandbox = ClusterSandbox::new();
    let mut shell = Interp::new(&mut sandbox);
    let err = shell.run_script("while true; do x=1; done").unwrap_err();
    assert!(err.to_string().contains("step budget"));
}

/// `kubectl` errors surface on stderr and fail `&&` chains.
#[test]
fn kubectl_failure_breaks_chain() {
    let script = "kubectl get pods nonexistent && echo should_not_print\necho done";
    let outcome = run_with_files(script, &[]);
    assert!(!outcome.stdout.contains("should_not_print"));
    assert!(outcome.stdout.contains("done"));
    assert!(outcome.combined.contains("NotFound"));
}
