//! The arena parse path: a span-based single-pass scanner feeding a flat
//! node table with interned strings.
//!
//! The legacy parser ([`crate::parser::parse_legacy`]) allocates
//! aggressively on the hot path: two `String`s per physical line at scan
//! time, a fresh clone of the current line at every dispatch decision, a
//! `String` per scalar occurrence and per mapping key, and a boxed
//! `Node`/`Vec<Node>` tree as output. This module is the same algorithm —
//! byte-for-byte identical documents, comments, line numbers and error
//! diagnostics, proved by `tests/arena_equivalence.rs` — rebuilt around
//! three allocation-free ideas:
//!
//! * **byte-span tokens**: the scanner produces `(offset, len)` spans
//!   into the source buffer (the private `SLine`) instead of owned
//!   per-line `String`s, and every dispatch reads a borrowed slice;
//! * **string interning**: scalar text, mapping keys and comments go
//!   through a per-document [`StrInterner`], so the ~20 ubiquitous
//!   Kubernetes keys are stored once per document no matter how often
//!   they repeat;
//! * **a flat arena**: nodes live in one `Vec<ArenaNode>` with child
//!   *index ranges* into shared side tables ([`ArenaDoc`]), not a boxed
//!   tree — one allocation class that grows geometrically and drops in
//!   O(1).
//!
//! Anchors resolve through a small linear-probe vector keyed by interned
//! symbol (the private `AnchorTable`) instead of a `HashMap`: real
//! manifests carry
//! fewer than four anchors per document, and the hash map showed up in
//! parse profiles purely as allocation and hashing overhead.
//!
//! [`crate::parse`] is a thin wrapper: arena-parse then materialize
//! `Node`s. [`crate::doc::PreparedDoc`] keeps the arena as its backing
//! store and materializes `Node`/`Yaml` views only on demand.

use crate::intern::{StrInterner, Sym};
use crate::parser::{
    fold_lines, plain_scalar_kind, split_key, unescape_double_quoted, unescape_single_quoted,
    unquote_key_text, BlockScalarHeader, Chomp, Node, NodeKind, ParseYamlError, PlainKind,
};
use crate::value::Yaml;

/// A scalar leaf in the arena: typed values inline, strings as interned
/// symbols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArenaScalar {
    /// The null value.
    Null,
    /// A boolean scalar.
    Bool(bool),
    /// An integer scalar.
    Int(i64),
    /// A float scalar.
    Float(f64),
    /// A string scalar, interned.
    Str(Sym),
}

/// Structure of an [`ArenaNode`]: a scalar, or an index range into the
/// arena's shared child tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArenaKind {
    /// A scalar leaf.
    Scalar(ArenaScalar),
    /// A sequence: `len` node ids starting at `start` in the sequence
    /// child table.
    Seq {
        /// First index in the sequence child table.
        start: u32,
        /// Number of children.
        len: u32,
    },
    /// A mapping: `len` `(key, node)` pairs starting at `start` in the
    /// mapping entry table.
    Map {
        /// First index in the mapping entry table.
        start: u32,
        /// Number of entries.
        len: u32,
    },
}

/// One node of the flat parse tree: structure + the trailing comment that
/// annotated it (interned) + the 1-based source line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArenaNode {
    /// The node's structure.
    pub kind: ArenaKind,
    /// Trailing `# ...` comment on the line that introduced this node.
    pub comment: Option<Sym>,
    /// 1-based source line.
    pub line: u32,
}

/// The flat output of an arena parse: node table, child tables, document
/// roots and the interner, with no references back into the source text.
#[derive(Debug, Clone, Default)]
pub(crate) struct ArenaParts {
    pub(crate) nodes: Vec<ArenaNode>,
    pub(crate) seq_children: Vec<u32>,
    pub(crate) map_entries: Vec<(Sym, u32)>,
    pub(crate) roots: Vec<u32>,
    pub(crate) interner: StrInterner,
}

impl ArenaParts {
    fn push(&mut self, kind: ArenaKind, comment: Option<Sym>, line: u32) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(ArenaNode {
            kind,
            comment,
            line,
        });
        id
    }

    pub(crate) fn node_to_node(&self, id: u32) -> Node {
        let n = &self.nodes[id as usize];
        let comment = n.comment.map(|s| self.interner.resolve(s).to_owned());
        let line = n.line as usize;
        let kind = match n.kind {
            ArenaKind::Scalar(s) => NodeKind::Scalar(self.scalar_to_yaml(s)),
            ArenaKind::Seq { start, len } => NodeKind::Seq(
                self.seq_children[start as usize..(start + len) as usize]
                    .iter()
                    .map(|&c| self.node_to_node(c))
                    .collect(),
            ),
            ArenaKind::Map { start, len } => NodeKind::Map(
                self.map_entries[start as usize..(start + len) as usize]
                    .iter()
                    .map(|&(k, c)| (self.interner.resolve(k).to_owned(), self.node_to_node(c)))
                    .collect(),
            ),
        };
        Node {
            kind,
            comment,
            line,
        }
    }

    pub(crate) fn node_to_value(&self, id: u32) -> Yaml {
        let n = &self.nodes[id as usize];
        match n.kind {
            ArenaKind::Scalar(s) => self.scalar_to_yaml(s),
            ArenaKind::Seq { start, len } => Yaml::Seq(
                self.seq_children[start as usize..(start + len) as usize]
                    .iter()
                    .map(|&c| self.node_to_value(c))
                    .collect(),
            ),
            ArenaKind::Map { start, len } => Yaml::Map(
                self.map_entries[start as usize..(start + len) as usize]
                    .iter()
                    .map(|&(k, c)| (self.interner.resolve(k).to_owned(), self.node_to_value(c)))
                    .collect(),
            ),
        }
    }

    pub(crate) fn scalar_to_yaml(&self, s: ArenaScalar) -> Yaml {
        match s {
            ArenaScalar::Null => Yaml::Null,
            ArenaScalar::Bool(b) => Yaml::Bool(b),
            ArenaScalar::Int(i) => Yaml::Int(i),
            ArenaScalar::Float(f) => Yaml::Float(f),
            ArenaScalar::Str(sym) => Yaml::Str(self.interner.resolve(sym).to_owned()),
        }
    }

    /// Scalar-leaf count of a subtree, mirroring [`Yaml::leaf_count`]
    /// (empty containers count once) without materializing values.
    pub(crate) fn leaf_count(&self, id: u32) -> usize {
        match self.nodes[id as usize].kind {
            ArenaKind::Scalar(_) => 1,
            ArenaKind::Seq { len: 0, .. } | ArenaKind::Map { len: 0, .. } => 1,
            ArenaKind::Seq { start, len } => self.seq_children
                [start as usize..(start + len) as usize]
                .iter()
                .map(|&c| self.leaf_count(c))
                .sum(),
            ArenaKind::Map { start, len } => self.map_entries
                [start as usize..(start + len) as usize]
                .iter()
                .map(|&(_, c)| self.leaf_count(c))
                .sum(),
        }
    }
}

/// A YAML stream parsed into the arena representation, owning its source.
///
/// Construction never fails: unparseable text records the
/// [`error`](ArenaDoc::error) with an empty node table, mirroring
/// [`crate::doc::PreparedDoc`]'s contract.
///
/// # Examples
///
/// ```
/// use yamlkit::arena::ArenaDoc;
/// let doc = ArenaDoc::parse("kind: Pod\nmetadata:\n  name: web\n");
/// assert!(doc.error().is_none());
/// assert_eq!(doc.doc_count(), 1);
/// assert_eq!(doc.leaf_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ArenaDoc {
    source: String,
    parts: ArenaParts,
    error: Option<ParseYamlError>,
}

impl ArenaDoc {
    /// Parses `source` into the arena. A malformed stream yields an
    /// [`ArenaDoc`] with the error recorded and no documents.
    pub fn parse(source: impl Into<String>) -> ArenaDoc {
        let source = source.into();
        match parse_arena(&source) {
            Ok(parts) => ArenaDoc {
                source,
                parts,
                error: None,
            },
            Err(e) => ArenaDoc {
                source,
                parts: ArenaParts::default(),
                error: Some(e),
            },
        }
    }

    /// The original text, untouched.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parse error, when the text did not parse.
    pub fn error(&self) -> Option<&ParseYamlError> {
        self.error.as_ref()
    }

    /// Number of documents in the stream (0 when the text did not parse).
    pub fn doc_count(&self) -> usize {
        self.parts.roots.len()
    }

    /// Root node ids, one per document.
    pub fn roots(&self) -> &[u32] {
        &self.parts.roots
    }

    /// The node behind an id.
    pub fn node(&self, id: u32) -> &ArenaNode {
        &self.parts.nodes[id as usize]
    }

    /// Children of a sequence node's range.
    pub fn seq_children(&self, start: u32, len: u32) -> &[u32] {
        &self.parts.seq_children[start as usize..(start + len) as usize]
    }

    /// Entries of a mapping node's range.
    pub fn map_entries(&self, start: u32, len: u32) -> &[(Sym, u32)] {
        &self.parts.map_entries[start as usize..(start + len) as usize]
    }

    /// The text behind an interned symbol.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.parts.interner.resolve(sym)
    }

    /// The trailing comment of a node, resolved.
    pub fn comment_str(&self, id: u32) -> Option<&str> {
        self.parts.nodes[id as usize]
            .comment
            .map(|s| self.parts.interner.resolve(s))
    }

    /// A scalar lifted to a plain [`Yaml`] value (allocates for strings).
    pub fn scalar_value(&self, s: ArenaScalar) -> Yaml {
        self.parts.scalar_to_yaml(s)
    }

    /// Materializes the legacy annotated node trees, one per document —
    /// exactly what [`crate::parse`] returns for this source.
    pub fn materialize_nodes(&self) -> Vec<Node> {
        self.parts
            .roots
            .iter()
            .map(|&r| self.parts.node_to_node(r))
            .collect()
    }

    /// Materializes the plain values, one per document.
    pub fn materialize_values(&self) -> Vec<Yaml> {
        self.parts
            .roots
            .iter()
            .map(|&r| self.parts.node_to_value(r))
            .collect()
    }

    /// Total scalar-leaf count across documents (see
    /// [`Yaml::leaf_count`]), computed on the arena without
    /// materialization.
    pub fn leaf_count(&self) -> usize {
        self.parts
            .roots
            .iter()
            .map(|&r| self.parts.leaf_count(r))
            .sum()
    }

    /// Distinct strings interned while parsing (keys + string scalars +
    /// comments).
    pub fn interned_strings(&self) -> usize {
        self.parts.interner.len()
    }
}

/// Anchor/alias table: a linear-probe vector keyed by interned symbol.
/// Anchors are rare (fewer than four per document across the corpus), so
/// a probe over a dense `Vec` beats a `HashMap`'s hashing + allocation on
/// every parse that defines none.
#[derive(Debug, Default)]
struct AnchorTable {
    entries: Vec<(Sym, u32)>,
}

impl AnchorTable {
    fn get(&self, key: Sym) -> Option<u32> {
        self.entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, id)| id)
    }

    fn insert(&mut self, key: Sym, id: u32) {
        for entry in &mut self.entries {
            if entry.0 == key {
                entry.1 = id;
                return;
            }
        }
        self.entries.push((key, id));
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// A physical line as byte spans into the source: indentation width,
/// trimmed content span, and the detached trailing comment span (present
/// but empty for a bare `#`).
#[derive(Debug, Clone, Copy)]
struct SLine {
    number: u32,
    indent: u32,
    content: (u32, u32),
    comment: Option<(u32, u32)>,
}

impl SLine {
    fn is_blank(&self) -> bool {
        self.content.0 == self.content.1
    }
}

/// Finds the byte offset of a comment `#` in a line body (respecting
/// quotes), mirroring the legacy `detach_comment` state machine.
fn find_comment_start(body: &str) -> Option<usize> {
    let mut in_single = false;
    let mut in_double = false;
    let mut prev: Option<char> = None;
    let mut it = body.char_indices();
    while let Some((idx, c)) = it.next() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '#' if !in_single && !in_double => {
                let at_start = idx == 0;
                let after_space = prev.is_some_and(|p| p == ' ' || p == '\t');
                if at_start || after_space {
                    return Some(idx);
                }
            }
            '\\' if in_double => {
                // Skip the escaped character entirely.
                it.next();
                prev = Some('\\');
                continue;
            }
            _ => {}
        }
        prev = Some(c);
    }
    None
}

/// Splits source into span [`SLine`]s — the zero-copy sibling of the
/// legacy `split_lines` — rejecting tab indentation with the same
/// diagnostics.
fn scan_lines(source: &str) -> Result<Vec<SLine>, ParseYamlError> {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(source.len() / 24 + 1);
    let mut line_start = 0usize;
    let mut number = 0u32;
    while line_start <= bytes.len() {
        // Match `str::lines`: split at '\n', strip one preceding '\r',
        // final line ending optional.
        let nl = bytes[line_start..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| line_start + p);
        let (raw_end, next) = match nl {
            Some(p) => {
                let end = if p > line_start && bytes[p - 1] == b'\r' {
                    p - 1
                } else {
                    p
                };
                (end, p + 1)
            }
            None => {
                if line_start == bytes.len() {
                    break;
                }
                (bytes.len(), bytes.len() + 1)
            }
        };
        number += 1;
        let raw = &source[line_start..raw_end];
        let indent = raw.bytes().take_while(|&b| b == b' ').count();
        let head = &raw.as_bytes()[..raw.len().min(indent + 1)];
        if head.contains(&b'\t') && !raw.trim().is_empty() {
            // A tab before content is illegal YAML indentation.
            let before_end = raw
                .bytes()
                .position(|b| b != b' ' && b != b'\t')
                .unwrap_or(raw.len());
            if raw.as_bytes()[..before_end].contains(&b'\t') {
                return Err(ParseYamlError::new(
                    number as usize,
                    "tab used for indentation",
                ));
            }
        }
        let body_start = line_start + indent;
        let body = &source[body_start..raw_end];
        let (content_end, comment) = match find_comment_start(body) {
            Some(idx) => {
                let c = body[idx + 1..].trim();
                let c_start = body_start
                    + idx
                    + 1
                    + (body[idx + 1..].len() - body[idx + 1..].trim_start().len());
                (
                    body_start + body[..idx].trim_end().len(),
                    Some((c_start as u32, (c_start + c.len()) as u32)),
                )
            }
            None => (body_start + body.trim_end().len(), None),
        };
        out.push(SLine {
            number,
            indent: indent as u32,
            content: (body_start as u32, content_end as u32),
            comment,
        });
        line_start = next;
    }
    Ok(out)
}

/// Parses a whole YAML stream into arena parts. Mirrors the legacy
/// [`crate::parser::parse_legacy`] document-splitting loop exactly.
pub(crate) fn parse_arena(source: &str) -> Result<ArenaParts, ParseYamlError> {
    let lines = scan_lines(source)?;
    let mut out = ArenaParts::default();
    let mut parser = ArenaParser {
        source,
        lines: Vec::new(),
        pos: 0,
        out: &mut out,
        anchors: AnchorTable::default(),
    };
    let mut chunk: Vec<SLine> = Vec::new();
    for line in lines {
        let content = parser.text(line.content).trim_end();
        if line.indent == 0 && (content == "---" || content.starts_with("--- ")) {
            parser.flush(&mut chunk)?;
            // `--- value` puts an inline document on the separator line;
            // recompute the remainder's span relative to the source.
            let mut rest = content;
            while let Some(stripped) = rest.strip_prefix("---") {
                rest = stripped;
            }
            let rest = rest.trim_start();
            if !rest.is_empty() {
                let start = line.content.0 + (content.len() - rest.len()) as u32;
                let mut inline = line;
                inline.content = (start, start + rest.len() as u32);
                inline.indent = 4; // synthetic; only relative depth matters
                chunk.push(inline);
            }
            continue;
        }
        if line.indent == 0 && content == "..." {
            parser.flush(&mut chunk)?;
            continue;
        }
        if line.indent == 0 && content.starts_with('%') && chunk.is_empty() {
            continue; // %YAML / %TAG directives
        }
        chunk.push(line);
    }
    parser.flush(&mut chunk)?;
    Ok(out)
}

struct ArenaParser<'s, 'o> {
    source: &'s str,
    lines: Vec<SLine>,
    pos: usize,
    out: &'o mut ArenaParts,
    anchors: AnchorTable,
}

impl<'s, 'o> ArenaParser<'s, 'o> {
    fn text(&self, span: (u32, u32)) -> &'s str {
        &self.source[span.0 as usize..span.1 as usize]
    }

    fn intern_span(&mut self, span: (u32, u32)) -> Sym {
        self.out
            .interner
            .intern(&self.source[span.0 as usize..span.1 as usize])
    }

    fn comment_sym(&mut self, line: &SLine) -> Option<Sym> {
        line.comment.map(|span| self.intern_span(span))
    }

    /// Parses the accumulated chunk as one document, if it has content.
    fn flush(&mut self, chunk: &mut Vec<SLine>) -> Result<(), ParseYamlError> {
        if chunk.iter().any(|l| !l.is_blank()) {
            self.lines = std::mem::take(chunk);
            self.pos = 0;
            self.anchors.clear();
            let root = self.parse_document()?;
            self.out.roots.push(root);
        } else {
            chunk.clear();
        }
        Ok(())
    }

    fn parse_document(&mut self) -> Result<u32, ParseYamlError> {
        self.skip_blanks();
        if self.pos >= self.lines.len() {
            return Ok(self.out.push(ArenaKind::Scalar(ArenaScalar::Null), None, 1));
        }
        let indent = self.lines[self.pos].indent;
        let node = self.parse_block(indent)?;
        self.skip_blanks();
        if let Some(line) = self.lines.get(self.pos) {
            return Err(ParseYamlError::new(
                line.number as usize,
                format!(
                    "unexpected content after document: {:?}",
                    self.text(line.content)
                ),
            ));
        }
        Ok(node)
    }

    fn skip_blanks(&mut self) {
        while self.lines.get(self.pos).is_some_and(SLine::is_blank) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<SLine> {
        self.skip_blanks();
        self.lines.get(self.pos).copied()
    }

    /// Parses a block node whose first line sits at exactly `indent`.
    fn parse_block(&mut self, indent: u32) -> Result<u32, ParseYamlError> {
        let line = match self.peek() {
            Some(l) if l.indent == indent => l,
            Some(l) => {
                return Err(ParseYamlError::new(
                    l.number as usize,
                    format!("expected indent {indent}, found {}", l.indent),
                ))
            }
            None => {
                return Ok(self.out.push(ArenaKind::Scalar(ArenaScalar::Null), None, 0));
            }
        };
        let content = self.text(line.content);
        if content == "-" || content.starts_with("- ") {
            self.parse_sequence(indent)
        } else if split_key(content).is_some() {
            self.parse_mapping(indent)
        } else {
            // A bare scalar document (possibly multi-line plain scalar).
            self.pos += 1;
            let comment = self.comment_sym(&line);
            self.parse_scalar_token(content, line.number, comment)
        }
    }

    fn parse_sequence(&mut self, indent: u32) -> Result<u32, ParseYamlError> {
        let mut items: Vec<u32> = Vec::new();
        let first_line = self.peek().map(|l| l.number).unwrap_or(0);
        loop {
            let line = match self.peek() {
                Some(l)
                    if l.indent == indent && {
                        let c = self.text(l.content);
                        c == "-" || c.starts_with("- ")
                    } =>
                {
                    l
                }
                Some(l) if l.indent > indent => {
                    return Err(ParseYamlError::new(
                        l.number as usize,
                        "bad indentation inside sequence",
                    ))
                }
                _ => break,
            };
            let content = self.text(line.content);
            let after = if content == "-" {
                ""
            } else {
                content[2..].trim_start()
            };
            if after.is_empty() {
                // Item body is the nested block (if any) at deeper indent.
                self.pos += 1;
                match self.peek() {
                    Some(next) if next.indent > indent => {
                        let child_indent = next.indent;
                        items.push(self.parse_block(child_indent)?);
                    }
                    _ => {
                        let comment = self.comment_sym(&line);
                        items.push(self.out.push(
                            ArenaKind::Scalar(ArenaScalar::Null),
                            comment,
                            line.number,
                        ));
                    }
                }
            } else if let Some(header) = BlockScalarHeader::parse(after) {
                self.pos += 1;
                let text = self.parse_block_scalar(indent, header)?;
                let sym = self.out.interner.intern(&text);
                let comment = self.comment_sym(&line);
                items.push(self.out.push(
                    ArenaKind::Scalar(ArenaScalar::Str(sym)),
                    comment,
                    line.number,
                ));
            } else {
                // Re-indent the content after `- ` and parse it as a block
                // that may continue on following, deeper-indented lines.
                let consumed = (content.len() - after.len()) as u32;
                let inner_indent = indent + consumed;
                let rewritten = &mut self.lines[self.pos];
                rewritten.indent = inner_indent;
                rewritten.content = (rewritten.content.0 + consumed, rewritten.content.1);
                items.push(self.parse_block(inner_indent)?);
            }
        }
        let start = self.out.seq_children.len() as u32;
        self.out.seq_children.extend_from_slice(&items);
        Ok(self.out.push(
            ArenaKind::Seq {
                start,
                len: items.len() as u32,
            },
            None,
            first_line,
        ))
    }

    fn parse_mapping(&mut self, indent: u32) -> Result<u32, ParseYamlError> {
        let mut entries: Vec<(Sym, u32)> = Vec::new();
        let first_line = self.peek().map(|l| l.number).unwrap_or(0);
        loop {
            let line = match self.peek() {
                Some(l) if l.indent == indent => l,
                Some(l) if l.indent > indent => {
                    return Err(ParseYamlError::new(
                        l.number as usize,
                        "bad indentation inside mapping",
                    ))
                }
                _ => break,
            };
            let content = self.text(line.content);
            let Some((key, rest)) = split_key(content) else {
                break;
            };
            let key = unquote_key_text(key, line.number as usize)?;
            let key_sym = self.out.interner.intern(&key);
            self.pos += 1;
            let rest = rest.trim();
            let node = if rest.is_empty() {
                // Value is a nested block, or null when nothing deeper follows.
                match self.peek() {
                    Some(next) if next.indent > indent => {
                        let child = next.indent;
                        let node = self.parse_block(child)?;
                        if self.out.nodes[node as usize].comment.is_none() {
                            self.out.nodes[node as usize].comment = self.comment_sym(&line);
                        }
                        node
                    }
                    // `key:` followed by a sequence at the *same* indent is
                    // legal YAML (common in hand-written manifests).
                    Some(next)
                        if next.indent == indent && {
                            let c = self.text(next.content);
                            c == "-" || c.starts_with("- ")
                        } =>
                    {
                        self.parse_sequence(indent)?
                    }
                    _ => {
                        let comment = self.comment_sym(&line);
                        self.out
                            .push(ArenaKind::Scalar(ArenaScalar::Null), comment, line.number)
                    }
                }
            } else if let Some(header) = BlockScalarHeader::parse(rest) {
                let text = self.parse_block_scalar(indent, header)?;
                let sym = self.out.interner.intern(&text);
                let comment = self.comment_sym(&line);
                self.out.push(
                    ArenaKind::Scalar(ArenaScalar::Str(sym)),
                    comment,
                    line.number,
                )
            } else {
                let comment = self.comment_sym(&line);
                self.parse_scalar_token(rest, line.number, comment)?
            };
            entries.push((key_sym, node));
        }
        if entries.is_empty() {
            let n = self.lines.get(self.pos).map(|l| l.number).unwrap_or(0);
            return Err(ParseYamlError::new(n as usize, "expected mapping entry"));
        }
        let start = self.out.map_entries.len() as u32;
        self.out.map_entries.extend_from_slice(&entries);
        Ok(self.out.push(
            ArenaKind::Map {
                start,
                len: entries.len() as u32,
            },
            None,
            first_line,
        ))
    }

    /// Reads the body of a `|` / `>` block scalar: all following lines
    /// that are blank or indented deeper than the key line.
    fn parse_block_scalar(
        &mut self,
        key_indent: u32,
        header: BlockScalarHeader,
    ) -> Result<String, ParseYamlError> {
        let mut raw: Vec<(usize, String)> = Vec::new();
        while let Some(l) = self.lines.get(self.pos).copied() {
            if l.is_blank() {
                raw.push((usize::MAX, String::new()));
                self.pos += 1;
                continue;
            }
            if l.indent <= key_indent {
                break;
            }
            // Comments are content inside block scalars: reassemble.
            let mut text = self.text(l.content).to_owned();
            if let Some(span) = l.comment {
                let c = self.text(span);
                if c.is_empty() {
                    text.push_str(" #");
                } else {
                    text.push_str(" # ");
                    text.push_str(c);
                }
            }
            raw.push((l.indent as usize, text));
            self.pos += 1;
        }
        // Trim trailing blank markers; they matter only for keep-chomping.
        let mut trailing_blanks = 0;
        while raw.last().is_some_and(|(i, _)| *i == usize::MAX) {
            raw.pop();
            trailing_blanks += 1;
        }
        let base = raw
            .iter()
            .filter(|(i, _)| *i != usize::MAX)
            .map(|(i, _)| *i)
            .min()
            .unwrap_or(key_indent as usize + 1);
        let lines: Vec<String> = raw
            .into_iter()
            .map(|(i, text)| {
                if i == usize::MAX {
                    String::new()
                } else {
                    format!("{}{}", " ".repeat(i - base), text)
                }
            })
            .collect();
        let mut body = if header.folded {
            fold_lines(&lines)
        } else {
            lines.join("\n")
        };
        match header.chomp {
            Chomp::Strip => {}
            Chomp::Clip => {
                if !body.is_empty() {
                    body.push('\n');
                }
            }
            Chomp::Keep => {
                body.push('\n');
                for _ in 0..trailing_blanks {
                    body.push('\n');
                }
            }
        }
        Ok(body)
    }

    /// Parses an inline scalar or flow-collection token into an arena
    /// node carrying `comment`/`line` — the arena analogue of the legacy
    /// `parse_scalar_token` + `Node::from_value` pair.
    fn parse_scalar_token(
        &mut self,
        token: &str,
        line: u32,
        comment: Option<Sym>,
    ) -> Result<u32, ParseYamlError> {
        let id = self.parse_scalar_value(token, line)?;
        self.out.nodes[id as usize].comment = comment;
        Ok(id)
    }

    /// Parses a scalar/flow token into a (comment-free) arena node.
    fn parse_scalar_value(&mut self, token: &str, line: u32) -> Result<u32, ParseYamlError> {
        let token = token.trim();
        // Anchor definition: `&name value`
        if let Some(rest) = token.strip_prefix('&') {
            let (name, rest) = rest
                .split_once(char::is_whitespace)
                .map(|(n, r)| (n, r.trim()))
                .unwrap_or((rest, ""));
            let id = if rest.is_empty() {
                self.out
                    .push(ArenaKind::Scalar(ArenaScalar::Null), None, line)
            } else {
                self.parse_scalar_value(rest, line)?
            };
            let name_sym = self.out.interner.intern(name);
            self.anchors.insert(name_sym, id);
            return Ok(id);
        }
        // Alias: `*name`
        if let Some(name) = token.strip_prefix('*') {
            let name_sym = self.out.interner.intern(name.trim());
            let Some(src) = self.anchors.get(name_sym) else {
                return Err(ParseYamlError::new(
                    line as usize,
                    format!("unknown alias *{name}"),
                ));
            };
            return Ok(self.copy_for_alias(src, line));
        }
        // Tag: `!!str 5` — strip and reparse.
        if token.starts_with("!!") {
            if let Some((tag, rest)) = token.split_once(char::is_whitespace) {
                let v = self.parse_scalar_value(rest.trim(), line)?;
                return Ok(self.coerce_tag(tag, v, line));
            }
            return Ok(self
                .out
                .push(ArenaKind::Scalar(ArenaScalar::Null), None, line));
        }
        if token.starts_with('[') {
            let (id, used) = self.parse_flow(token, line)?;
            if used != token.len() {
                return Err(ParseYamlError::new(
                    line as usize,
                    "trailing characters after flow sequence",
                ));
            }
            return Ok(id);
        }
        if token.starts_with('{') {
            let (id, used) = self.parse_flow(token, line)?;
            if used != token.len() {
                return Err(ParseYamlError::new(
                    line as usize,
                    "trailing characters after flow mapping",
                ));
            }
            return Ok(id);
        }
        if token.starts_with('"') {
            let s = unescape_double_quoted(token, line as usize)?;
            let sym = self.out.interner.intern(&s);
            return Ok(self
                .out
                .push(ArenaKind::Scalar(ArenaScalar::Str(sym)), None, line));
        }
        if token.starts_with('\'') {
            let s = unescape_single_quoted(token, line as usize)?;
            let sym = self.out.interner.intern(&s);
            return Ok(self
                .out
                .push(ArenaKind::Scalar(ArenaScalar::Str(sym)), None, line));
        }
        let scalar = self.plain(token);
        Ok(self.out.push(ArenaKind::Scalar(scalar), None, line))
    }

    /// Types a plain scalar, interning only when it stays a string.
    fn plain(&mut self, token: &str) -> ArenaScalar {
        match plain_scalar_kind(token) {
            PlainKind::Null => ArenaScalar::Null,
            PlainKind::Bool(b) => ArenaScalar::Bool(b),
            PlainKind::Int(i) => ArenaScalar::Int(i),
            PlainKind::Float(f) => ArenaScalar::Float(f),
            PlainKind::Str => ArenaScalar::Str(self.out.interner.intern(token)),
        }
    }

    /// Deep-copies an anchored subtree for an alias occurrence: comments
    /// reset and lines rebased, mirroring the legacy `to_value` →
    /// `from_value` round trip an alias performs.
    fn copy_for_alias(&mut self, src: u32, line: u32) -> u32 {
        match self.out.nodes[src as usize].kind {
            ArenaKind::Scalar(s) => self.out.push(ArenaKind::Scalar(s), None, line),
            ArenaKind::Seq { start, len } => {
                let kids: Vec<u32> =
                    self.out.seq_children[start as usize..(start + len) as usize].to_vec();
                let copied: Vec<u32> = kids
                    .into_iter()
                    .map(|c| self.copy_for_alias(c, line))
                    .collect();
                let new_start = self.out.seq_children.len() as u32;
                self.out.seq_children.extend_from_slice(&copied);
                self.out.push(
                    ArenaKind::Seq {
                        start: new_start,
                        len: copied.len() as u32,
                    },
                    None,
                    line,
                )
            }
            ArenaKind::Map { start, len } => {
                let entries: Vec<(Sym, u32)> =
                    self.out.map_entries[start as usize..(start + len) as usize].to_vec();
                let copied: Vec<(Sym, u32)> = entries
                    .into_iter()
                    .map(|(k, c)| (k, self.copy_for_alias(c, line)))
                    .collect();
                let new_start = self.out.map_entries.len() as u32;
                self.out.map_entries.extend_from_slice(&copied);
                self.out.push(
                    ArenaKind::Map {
                        start: new_start,
                        len: copied.len() as u32,
                    },
                    None,
                    line,
                )
            }
        }
    }

    /// `!!tag` coercion on an already-parsed node, mirroring the legacy
    /// `coerce_tag` (which renders the value to text and re-types it).
    fn coerce_tag(&mut self, tag: &str, id: u32, line: u32) -> u32 {
        let value = self.out.node_to_value(id);
        let coerced = crate::parser::coerce_tag(tag, value);
        self.build_from_yaml(&coerced, line)
    }

    /// Lifts a plain [`Yaml`] into arena nodes (tag-coercion only; the
    /// rare path).
    fn build_from_yaml(&mut self, v: &Yaml, line: u32) -> u32 {
        match v {
            Yaml::Null => self
                .out
                .push(ArenaKind::Scalar(ArenaScalar::Null), None, line),
            Yaml::Bool(b) => self
                .out
                .push(ArenaKind::Scalar(ArenaScalar::Bool(*b)), None, line),
            Yaml::Int(i) => self
                .out
                .push(ArenaKind::Scalar(ArenaScalar::Int(*i)), None, line),
            Yaml::Float(f) => self
                .out
                .push(ArenaKind::Scalar(ArenaScalar::Float(*f)), None, line),
            Yaml::Str(s) => {
                let sym = self.out.interner.intern(s);
                self.out
                    .push(ArenaKind::Scalar(ArenaScalar::Str(sym)), None, line)
            }
            Yaml::Seq(items) => {
                let kids: Vec<u32> = items
                    .iter()
                    .map(|i| self.build_from_yaml(i, line))
                    .collect();
                let start = self.out.seq_children.len() as u32;
                self.out.seq_children.extend_from_slice(&kids);
                self.out.push(
                    ArenaKind::Seq {
                        start,
                        len: kids.len() as u32,
                    },
                    None,
                    line,
                )
            }
            Yaml::Map(entries) => {
                let built: Vec<(Sym, u32)> = entries
                    .iter()
                    .map(|(k, v)| {
                        let sym = self.out.interner.intern(k);
                        (sym, self.build_from_yaml(v, line))
                    })
                    .collect();
                let start = self.out.map_entries.len() as u32;
                self.out.map_entries.extend_from_slice(&built);
                self.out.push(
                    ArenaKind::Map {
                        start,
                        len: built.len() as u32,
                    },
                    None,
                    line,
                )
            }
        }
    }

    /// Parses a flow collection starting at byte 0 of `s`; returns the
    /// node and how many bytes were consumed.
    fn parse_flow(&mut self, s: &str, line: u32) -> Result<(u32, usize), ParseYamlError> {
        let bytes = s.as_bytes();
        match bytes.first() {
            Some(b'[') => {
                let mut items: Vec<u32> = Vec::new();
                let mut i = 1;
                loop {
                    i = skip_ws(s, i);
                    if i >= s.len() {
                        return Err(ParseYamlError::new(
                            line as usize,
                            "unterminated flow sequence",
                        ));
                    }
                    if bytes[i] == b']' {
                        return Ok((self.finish_flow_seq(items, line), i + 1));
                    }
                    let (v, used) = self.parse_flow_value(&s[i..], line)?;
                    items.push(v);
                    i = skip_ws(s, i + used);
                    match bytes.get(i) {
                        Some(b',') => i += 1,
                        Some(b']') => return Ok((self.finish_flow_seq(items, line), i + 1)),
                        _ => {
                            return Err(ParseYamlError::new(
                                line as usize,
                                "expected , or ] in flow sequence",
                            ))
                        }
                    }
                }
            }
            Some(b'{') => {
                let mut entries: Vec<(Sym, u32)> = Vec::new();
                let mut i = 1;
                loop {
                    i = skip_ws(s, i);
                    if i >= s.len() {
                        return Err(ParseYamlError::new(
                            line as usize,
                            "unterminated flow mapping",
                        ));
                    }
                    if bytes[i] == b'}' {
                        return Ok((self.finish_flow_map(entries, line), i + 1));
                    }
                    let colon = crate::parser::find_flow_colon(&s[i..]).ok_or_else(|| {
                        ParseYamlError::new(line as usize, "expected key: value in flow mapping")
                    })?;
                    let key = unquote_key_text(s[i..i + colon].trim(), line as usize)?;
                    let key_sym = self.out.interner.intern(&key);
                    i = skip_ws(s, i + colon + 1);
                    let (v, used) = if matches!(bytes.get(i), Some(b',') | Some(b'}')) {
                        (
                            self.out
                                .push(ArenaKind::Scalar(ArenaScalar::Null), None, line),
                            0,
                        )
                    } else {
                        self.parse_flow_value(&s[i..], line)?
                    };
                    entries.push((key_sym, v));
                    i = skip_ws(s, i + used);
                    match bytes.get(i) {
                        Some(b',') => i += 1,
                        Some(b'}') => return Ok((self.finish_flow_map(entries, line), i + 1)),
                        _ => {
                            return Err(ParseYamlError::new(
                                line as usize,
                                "expected , or } in flow mapping",
                            ))
                        }
                    }
                }
            }
            _ => Err(ParseYamlError::new(line as usize, "not a flow collection")),
        }
    }

    fn finish_flow_seq(&mut self, items: Vec<u32>, line: u32) -> u32 {
        let start = self.out.seq_children.len() as u32;
        self.out.seq_children.extend_from_slice(&items);
        self.out.push(
            ArenaKind::Seq {
                start,
                len: items.len() as u32,
            },
            None,
            line,
        )
    }

    fn finish_flow_map(&mut self, entries: Vec<(Sym, u32)>, line: u32) -> u32 {
        let start = self.out.map_entries.len() as u32;
        self.out.map_entries.extend_from_slice(&entries);
        self.out.push(
            ArenaKind::Map {
                start,
                len: entries.len() as u32,
            },
            None,
            line,
        )
    }

    /// Parses one value inside a flow collection; returns bytes consumed.
    fn parse_flow_value(&mut self, s: &str, line: u32) -> Result<(u32, usize), ParseYamlError> {
        let bytes = s.as_bytes();
        match bytes.first() {
            Some(b'[') | Some(b'{') => self.parse_flow(s, line),
            Some(b'"') => {
                let end = crate::parser::find_quote_end(s, '"', line as usize)?;
                let text = unescape_double_quoted(&s[..=end], line as usize)?;
                let sym = self.out.interner.intern(&text);
                Ok((
                    self.out
                        .push(ArenaKind::Scalar(ArenaScalar::Str(sym)), None, line),
                    end + 1,
                ))
            }
            Some(b'\'') => {
                let end = crate::parser::find_quote_end(s, '\'', line as usize)?;
                let text = unescape_single_quoted(&s[..=end], line as usize)?;
                let sym = self.out.interner.intern(&text);
                Ok((
                    self.out
                        .push(ArenaKind::Scalar(ArenaScalar::Str(sym)), None, line),
                    end + 1,
                ))
            }
            _ => {
                // Plain scalar: up to , ] } at depth 0.
                let mut i = 0;
                while i < bytes.len() && !matches!(bytes[i], b',' | b']' | b'}') {
                    i += 1;
                }
                let scalar = self.plain(s[..i].trim());
                Ok((self.out.push(ArenaKind::Scalar(scalar), None, line), i))
            }
        }
    }
}

fn skip_ws(s: &str, mut i: usize) -> usize {
    let bytes = s.as_bytes();
    while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t') {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_matches_legacy_on_representative_manifest() {
        let src = "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: web # *
  labels:
    app: web
spec:
  replicas: 3
  containers:
  - name: c
    image: nginx:latest
    ports: [80, 443]
    env:
    - {name: A, value: \"1\"}
  script: |
    echo hi # kept
";
        let legacy = crate::parser::parse_legacy(src).unwrap();
        let arena = ArenaDoc::parse(src);
        assert!(arena.error().is_none());
        assert_eq!(arena.materialize_nodes(), legacy);
        assert_eq!(
            arena.materialize_values(),
            legacy.iter().map(Node::to_value).collect::<Vec<_>>()
        );
    }

    #[test]
    fn interner_dedups_repeated_keys() {
        let src = "a:\n- name: x\n- name: y\n- name: z\n";
        let arena = ArenaDoc::parse(src);
        // "a", "name", "x", "y", "z" — "name" stored once.
        assert_eq!(arena.interned_strings(), 5);
    }

    #[test]
    fn leaf_count_matches_values() {
        for src in [
            "a: 1\n",
            "a: 1\n---\nb:\n- x\n- y\n",
            "m: {}\ns: []\n",
            "deep:\n  nest:\n  - 1\n  - q: 2\n",
        ] {
            let arena = ArenaDoc::parse(src);
            let want: usize = arena
                .materialize_values()
                .iter()
                .map(Yaml::leaf_count)
                .sum();
            assert_eq!(arena.leaf_count(), want, "on {src:?}");
        }
    }

    #[test]
    fn parse_error_is_recorded() {
        let arena = ArenaDoc::parse("a: [1,\n");
        assert!(arena.error().is_some());
        assert_eq!(arena.doc_count(), 0);
    }

    #[test]
    fn anchor_table_last_insert_wins() {
        let src = "a: &x 1\nb: &x 2\nc: *x\n";
        let arena = ArenaDoc::parse(src);
        let values = arena.materialize_values();
        assert_eq!(values[0].get("c"), Some(&Yaml::Int(2)));
    }
}
