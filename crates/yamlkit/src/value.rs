//! The YAML document model.
//!
//! [`Yaml`] is an ordered, owned representation of a parsed YAML document.
//! Mappings preserve insertion order (YAML mappings are unordered for
//! equality purposes, which [`Yaml::eq_unordered`] implements, but order is
//! kept so that emitted documents round-trip the way cloud configuration
//! files are written).

use std::fmt;

/// A parsed YAML value.
///
/// # Examples
///
/// ```
/// use yamlkit::Yaml;
/// let doc = yamlkit::parse_one("a: 1\nb: [x, y]\n").unwrap().to_value();
/// assert_eq!(doc.get("a").and_then(Yaml::as_i64), Some(1));
/// assert_eq!(doc.get("b").and_then(|b| b.seq_len()), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Yaml {
    /// The null value (`~`, `null`, or an empty scalar).
    #[default]
    Null,
    /// A boolean scalar.
    Bool(bool),
    /// An integer scalar.
    Int(i64),
    /// A floating point scalar.
    Float(f64),
    /// A string scalar (plain or quoted).
    Str(String),
    /// A sequence (`- item` block style or `[a, b]` flow style).
    Seq(Vec<Yaml>),
    /// A mapping with insertion order preserved. Keys are strings, which is
    /// sufficient for every cloud-native configuration dialect this crate
    /// targets (Kubernetes, Istio, Envoy).
    Map(Vec<(String, Yaml)>),
}

impl Yaml {
    /// Returns the string slice if the value is a string scalar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Yaml::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if the value is an integer scalar.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Yaml::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float if the value is a float (or integer) scalar.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Yaml::Float(f) => Some(*f),
            Yaml::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the boolean if the value is a boolean scalar.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Yaml::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns `true` for `Yaml::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Yaml::Null)
    }

    /// Returns `true` for scalar values (everything except `Seq` and `Map`).
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Yaml::Seq(_) | Yaml::Map(_))
    }

    /// Looks up a key in a mapping.
    pub fn get(&self, key: &str) -> Option<&Yaml> {
        match self {
            Yaml::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable mapping lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Yaml> {
        match self {
            Yaml::Map(entries) => entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into a sequence.
    pub fn idx(&self, index: usize) -> Option<&Yaml> {
        match self {
            Yaml::Seq(items) => items.get(index),
            _ => None,
        }
    }

    /// Number of elements in a sequence, if this is one.
    pub fn seq_len(&self) -> Option<usize> {
        match self {
            Yaml::Seq(items) => Some(items.len()),
            _ => None,
        }
    }

    /// Number of entries in a mapping, if this is one.
    pub fn map_len(&self) -> Option<usize> {
        match self {
            Yaml::Map(entries) => Some(entries.len()),
            _ => None,
        }
    }

    /// Walks a `.`-free path of mapping keys, e.g. `["spec", "replicas"]`.
    pub fn get_path(&self, path: &[&str]) -> Option<&Yaml> {
        let mut cur = self;
        for key in path {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// Inserts or replaces a key in a mapping. Turns `Null` into an empty
    /// mapping first, so building documents incrementally is convenient.
    ///
    /// Returns the previous value when the key already existed.
    pub fn insert(&mut self, key: impl Into<String>, value: Yaml) -> Option<Yaml> {
        if self.is_null() {
            *self = Yaml::Map(Vec::new());
        }
        let key = key.into();
        match self {
            Yaml::Map(entries) => {
                for (k, v) in entries.iter_mut() {
                    if *k == key {
                        return Some(std::mem::replace(v, value));
                    }
                }
                entries.push((key, value));
                None
            }
            _ => None,
        }
    }

    /// Removes a key from a mapping, returning the value if present.
    pub fn remove(&mut self, key: &str) -> Option<Yaml> {
        match self {
            Yaml::Map(entries) => {
                let pos = entries.iter().position(|(k, _)| k == key)?;
                Some(entries.remove(pos).1)
            }
            _ => None,
        }
    }

    /// Iterates over mapping entries (empty iterator for non-mappings).
    pub fn entries(&self) -> impl Iterator<Item = (&str, &Yaml)> {
        let entries: &[(String, Yaml)] = match self {
            Yaml::Map(entries) => entries,
            _ => &[],
        };
        entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over sequence items (empty iterator for non-sequences).
    pub fn items(&self) -> impl Iterator<Item = &Yaml> {
        let items: &[Yaml] = match self {
            Yaml::Seq(items) => items,
            _ => &[],
        };
        items.iter()
    }

    /// Renders the scalar the way `kubectl -o jsonpath` renders leaf values.
    /// Collections render as compact JSON.
    pub fn render_scalar(&self) -> String {
        self.render_scalar_ref().into_owned()
    }

    /// [`render_scalar`](Yaml::render_scalar) without the unconditional
    /// allocation: string scalars borrow, everything else renders into an
    /// owned `Cow`. This is the fast path for label matching, which
    /// renders the same option lists against every candidate leaf.
    pub fn render_scalar_ref(&self) -> std::borrow::Cow<'_, str> {
        use std::borrow::Cow;
        match self {
            Yaml::Null => Cow::Borrowed(""),
            Yaml::Bool(true) => Cow::Borrowed("true"),
            Yaml::Bool(false) => Cow::Borrowed("false"),
            Yaml::Int(i) => Cow::Owned(i.to_string()),
            Yaml::Float(f) => Cow::Owned(format_float(*f)),
            Yaml::Str(s) => Cow::Borrowed(s.as_str()),
            other => Cow::Owned(crate::json::to_json(other)),
        }
    }

    /// Structural equality that ignores mapping order, the comparison the
    /// paper's *key-value exact match* metric requires (§3.2: "loads both
    /// ... into dictionaries and checks if the resulting dictionaries are
    /// the same").
    ///
    /// Duplicate keys compare by last occurrence, mirroring a dictionary
    /// load. Sequences stay order-sensitive: YAML lists are ordered.
    pub fn eq_unordered(&self, other: &Yaml) -> bool {
        match (self, other) {
            (Yaml::Map(a), Yaml::Map(b)) => {
                // Sorted-pair comparison: both sides deduplicated and
                // key-sorted once (O(n log n)), then walked in lockstep —
                // the per-key linear rescans this replaced were O(n²) and
                // real YAML (CRD status blobs, generated ConfigMaps) does
                // reach thousands of keys.
                let keys_a = dedup_keys_sorted(a);
                let keys_b = dedup_keys_sorted(b);
                keys_a.len() == keys_b.len()
                    && keys_a
                        .iter()
                        .zip(&keys_b)
                        .all(|((ka, va), (kb, vb))| ka == kb && va.eq_unordered(vb))
            }
            (Yaml::Seq(a), Yaml::Seq(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.eq_unordered(y))
            }
            (a, b) => a == b,
        }
    }

    /// Counts scalar leaves in the value tree. Empty containers count as a
    /// single leaf so that `spec: {}` is not free to omit.
    pub fn leaf_count(&self) -> usize {
        match self {
            Yaml::Seq(items) if !items.is_empty() => items.iter().map(Yaml::leaf_count).sum(),
            Yaml::Map(entries) if !entries.is_empty() => {
                entries.iter().map(|(_, v)| v.leaf_count()).sum()
            }
            _ => 1,
        }
    }
}

/// Keeps only the last occurrence of each key (mirroring a dictionary
/// load), sorted by key so two maps compare by zipping.
fn dedup_keys_sorted(entries: &[(String, Yaml)]) -> Vec<(&str, &Yaml)> {
    let mut keyed: Vec<(&str, usize)> = entries
        .iter()
        .enumerate()
        .map(|(i, (k, _))| (k.as_str(), i))
        .collect();
    // Sort by (key, position): within one key's run the last element is
    // the last occurrence, which wins.
    keyed.sort_unstable();
    let mut out: Vec<(&str, &Yaml)> = Vec::with_capacity(keyed.len());
    for (k, i) in keyed {
        let v = &entries[i].1;
        match out.last_mut() {
            Some(last) if last.0 == k => last.1 = v,
            _ => out.push((k, v)),
        }
    }
    out
}

/// Formats a float without the noise `{:?}` adds, matching YAML emitters.
pub(crate) fn format_float(f: f64) -> String {
    if f.is_nan() {
        ".nan".to_owned()
    } else if f.is_infinite() {
        if f > 0.0 {
            ".inf".to_owned()
        } else {
            "-.inf".to_owned()
        }
    } else if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        let s = format!("{f}");
        s
    }
}

impl fmt::Display for Yaml {
    /// Displays the canonical emitted form (see [`crate::emit`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::emitter::emit(self))
    }
}

impl From<bool> for Yaml {
    fn from(b: bool) -> Self {
        Yaml::Bool(b)
    }
}

impl From<i64> for Yaml {
    fn from(i: i64) -> Self {
        Yaml::Int(i)
    }
}

impl From<i32> for Yaml {
    fn from(i: i32) -> Self {
        Yaml::Int(i64::from(i))
    }
}

impl From<f64> for Yaml {
    fn from(f: f64) -> Self {
        Yaml::Float(f)
    }
}

impl From<&str> for Yaml {
    fn from(s: &str) -> Self {
        Yaml::Str(s.to_owned())
    }
}

impl From<String> for Yaml {
    fn from(s: String) -> Self {
        Yaml::Str(s)
    }
}

impl<T: Into<Yaml>> FromIterator<T> for Yaml {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Yaml::Seq(iter.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`Yaml::Map`] in place.
///
/// # Examples
///
/// ```
/// use yamlkit::{ymap, Yaml};
/// let m = ymap! { "name" => "nginx", "replicas" => 3i64 };
/// assert_eq!(m.get("replicas").and_then(Yaml::as_i64), Some(3));
/// ```
#[macro_export]
macro_rules! ymap {
    ( $( $k:expr => $v:expr ),* $(,)? ) => {
        $crate::Yaml::Map(vec![ $( ($k.to_string(), $crate::Yaml::from($v)) ),* ])
    };
}

/// Builds a [`Yaml::Seq`] in place.
///
/// # Examples
///
/// ```
/// use yamlkit::{yseq, Yaml};
/// let s = yseq!["a", "b"];
/// assert_eq!(s.seq_len(), Some(2));
/// ```
#[macro_export]
macro_rules! yseq {
    ( $( $v:expr ),* $(,)? ) => {
        $crate::Yaml::Seq(vec![ $( $crate::Yaml::from($v) ),* ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_insert_round_trip() {
        let mut m = Yaml::Null;
        assert_eq!(m.insert("a", Yaml::Int(1)), None);
        assert_eq!(m.insert("a", Yaml::Int(2)), Some(Yaml::Int(1)));
        assert_eq!(m.get("a"), Some(&Yaml::Int(2)));
        assert_eq!(m.remove("a"), Some(Yaml::Int(2)));
        assert_eq!(m.get("a"), None);
    }

    #[test]
    fn eq_unordered_ignores_map_order() {
        let a = ymap! { "x" => 1i64, "y" => 2i64 };
        let b = ymap! { "y" => 2i64, "x" => 1i64 };
        assert!(a.eq_unordered(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn eq_unordered_is_order_sensitive_for_sequences() {
        let a = yseq![1i64, 2i64];
        let b = yseq![2i64, 1i64];
        assert!(!a.eq_unordered(&b));
    }

    #[test]
    fn eq_unordered_nested() {
        let a = ymap! { "m" => ymap!{ "p" => 1i64, "q" => yseq!["a"] } };
        let b = ymap! { "m" => ymap!{ "q" => yseq!["a"], "p" => 1i64 } };
        assert!(a.eq_unordered(&b));
    }

    #[test]
    fn eq_unordered_duplicate_keys_take_last() {
        let a = Yaml::Map(vec![("k".into(), Yaml::Int(1)), ("k".into(), Yaml::Int(2))]);
        let b = ymap! { "k" => 2i64 };
        assert!(a.eq_unordered(&b));
    }

    #[test]
    fn eq_unordered_worst_case_1k_key_mapping() {
        // Worst case for the old per-key scan: 1000 keys compared against
        // their exact reversal (every key at the opposite end), plus a
        // duplicate run to exercise last-wins during the sorted dedup.
        let n = 1000i64;
        let mut fwd: Vec<(String, Yaml)> = (0..n)
            .map(|i| (format!("key-{i:04}"), Yaml::Int(i)))
            .collect();
        let rev: Vec<(String, Yaml)> = fwd.iter().rev().cloned().collect();
        let a = Yaml::Map(fwd.clone());
        let b = Yaml::Map(rev);
        assert!(a.eq_unordered(&b));
        // One value changed deep in the middle: unequal.
        let mut c = fwd.clone();
        c[500].1 = Yaml::Int(-1);
        assert!(!a.eq_unordered(&Yaml::Map(c)));
        // Stale duplicates of every key prepended: the last occurrences
        // (the original entries) still win, so equality holds.
        let mut dup: Vec<(String, Yaml)> = (0..n)
            .map(|i| (format!("key-{i:04}"), Yaml::Str("stale".into())))
            .collect();
        dup.append(&mut fwd);
        assert!(a.eq_unordered(&Yaml::Map(dup)));
    }

    #[test]
    fn leaf_count_counts_scalars_and_empty_containers() {
        let v = ymap! {
            "a" => 1i64,
            "b" => yseq![1i64, 2i64],
            "c" => Yaml::Map(vec![]),
        };
        assert_eq!(v.leaf_count(), 4);
    }

    #[test]
    fn get_path_walks_nested_maps() {
        let v = ymap! { "spec" => ymap!{ "replicas" => 3i64 } };
        assert_eq!(
            v.get_path(&["spec", "replicas"]).and_then(Yaml::as_i64),
            Some(3)
        );
        assert_eq!(v.get_path(&["spec", "missing"]), None);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(format_float(1.0), "1.0");
        assert_eq!(format_float(0.25), "0.25");
        assert_eq!(format_float(f64::INFINITY), ".inf");
    }

    #[test]
    fn render_scalar_matches_kubectl_style() {
        assert_eq!(Yaml::Str("x".into()).render_scalar(), "x");
        assert_eq!(Yaml::Int(80).render_scalar(), "80");
        assert_eq!(Yaml::Bool(true).render_scalar(), "true");
        assert_eq!(Yaml::Null.render_scalar(), "");
    }
}
