//! Reference-YAML match labels (CloudEval-YAML §2.1, §3.2).
//!
//! Reference solutions annotate scalars with comments that relax the
//! comparison performed by the *key-value wildcard match* metric:
//!
//! * `# *` — wildcard: any value is acceptable;
//! * `# v in ['20.04', '22.04']` — conditional: any listed value matches;
//! * no label — exact match (the default).
//!
//! [`MatchTree::from_node`] lifts a parsed [`Node`] into a tree of match
//! rules; [`MatchTree::iou`] scores a candidate document by intersection
//! over union of matched leaves, exactly the shape the paper describes
//! ("a tree with leaf nodes marked in exact/set/wildcard match and then
//! calculate the IoU of dictionaries").

use crate::arena::{ArenaKind, ArenaParts};
use crate::parser::{parse_one, Node, NodeKind};
use crate::value::Yaml;

/// Rule attached to a scalar leaf of the reference document.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchRule {
    /// Value must equal the reference exactly.
    Exact(Yaml),
    /// Any value is acceptable (`# *`).
    Wildcard,
    /// Value must be one of the listed alternatives (`# v in [...]`).
    ///
    /// Two forms are accepted, both present in the paper: the options may
    /// be complete values, or — as in `image: ubuntu:22.04 # v in
    /// ['20.04', '22.04']` — substrings of the reference value that are
    /// allowed to vary, with the rest of the value fixed.
    OneOf {
        /// The labeled reference value.
        reference: Yaml,
        /// Acceptable alternatives.
        options: Vec<Yaml>,
    },
}

impl MatchRule {
    /// Whether `candidate` satisfies this rule.
    pub fn matches(&self, candidate: &Yaml) -> bool {
        match self {
            MatchRule::Exact(v) => v == candidate || loose_scalar_eq(v, candidate),
            MatchRule::Wildcard => true,
            MatchRule::OneOf { reference, options } => {
                if options
                    .iter()
                    .any(|v| v == candidate || loose_scalar_eq(v, candidate))
                {
                    return true;
                }
                // Substring form: the reference contains one option; the
                // candidate must equal the reference with that fragment
                // replaced by any listed option.
                let (Yaml::Str(reference), Yaml::Str(candidate)) = (reference, candidate) else {
                    return false;
                };
                let Some(varying) = options
                    .iter()
                    .map(Yaml::render_scalar_ref)
                    .find(|o| !o.is_empty() && reference.contains(o.as_ref()))
                else {
                    return false;
                };
                options
                    .iter()
                    .map(Yaml::render_scalar_ref)
                    .any(|o| reference.replace(varying.as_ref(), o.as_ref()) == *candidate)
            }
        }
    }
}

/// Scalars that differ only in numeric representation (e.g. `5000` vs
/// `"5000"` is *not* loose-equal, but `1.0` and `1` are): YAML dictionary
/// comparison in the reference implementation goes through Python where
/// `1 == 1.0`.
fn loose_scalar_eq(a: &Yaml, b: &Yaml) -> bool {
    match (a, b) {
        (Yaml::Int(i), Yaml::Float(f)) | (Yaml::Float(f), Yaml::Int(i)) => *i as f64 == *f,
        _ => false,
    }
}

/// The reference document lifted into match rules.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchTree {
    /// Scalar leaf with its comparison rule.
    Leaf(MatchRule),
    /// Ordered sequence of subtrees.
    Seq(Vec<MatchTree>),
    /// Mapping from key to subtree (order-insensitive comparison).
    Map(Vec<(String, MatchTree)>),
}

impl MatchTree {
    /// Builds a match tree from an annotated parse [`Node`].
    pub fn from_node(node: &Node) -> MatchTree {
        match &node.kind {
            NodeKind::Scalar(v) => MatchTree::Leaf(parse_label(node.comment.as_deref(), v)),
            NodeKind::Seq(items) => {
                MatchTree::Seq(items.iter().map(MatchTree::from_node).collect())
            }
            NodeKind::Map(entries) => MatchTree::Map(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), MatchTree::from_node(v)))
                    .collect(),
            ),
        }
    }

    /// Builds a match tree by walking an arena subtree directly — the
    /// path `PreparedDoc::match_trees` uses, skipping `Node`
    /// materialization entirely.
    pub(crate) fn from_parts(parts: &ArenaParts, id: u32) -> MatchTree {
        let node = &parts.nodes[id as usize];
        match node.kind {
            ArenaKind::Scalar(s) => {
                let value = parts.scalar_to_yaml(s);
                let comment = node.comment.map(|c| parts.interner.resolve(c));
                MatchTree::Leaf(parse_label(comment, &value))
            }
            ArenaKind::Seq { start, len } => MatchTree::Seq(
                parts.seq_children[start as usize..(start + len) as usize]
                    .iter()
                    .map(|&c| MatchTree::from_parts(parts, c))
                    .collect(),
            ),
            ArenaKind::Map { start, len } => MatchTree::Map(
                parts.map_entries[start as usize..(start + len) as usize]
                    .iter()
                    .map(|&(k, c)| {
                        (
                            parts.interner.resolve(k).to_owned(),
                            MatchTree::from_parts(parts, c),
                        )
                    })
                    .collect(),
            ),
        }
    }

    /// Parses reference YAML text and builds the match tree.
    ///
    /// # Errors
    ///
    /// Propagates parser errors from malformed reference YAML.
    pub fn parse(reference: &str) -> Result<MatchTree, crate::ParseYamlError> {
        Ok(MatchTree::from_node(&parse_one(reference)?))
    }

    /// Number of scalar leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        match self {
            MatchTree::Leaf(_) => 1,
            MatchTree::Seq(items) if !items.is_empty() => {
                items.iter().map(MatchTree::leaf_count).sum()
            }
            MatchTree::Map(entries) if !entries.is_empty() => {
                entries.iter().map(|(_, t)| t.leaf_count()).sum()
            }
            _ => 1, // empty containers count once, like Yaml::leaf_count
        }
    }

    /// Intersection-over-union score of `candidate` against this reference:
    /// `matched_leaves / (reference_leaves + candidate_leaves - matched)`.
    /// Ranges over `[0, 1]`; 1.0 means every leaf matches both ways.
    pub fn iou(&self, candidate: &Yaml) -> f64 {
        let matched = self.matched_leaves(candidate);
        let union = self.leaf_count() + candidate.leaf_count() - matched;
        if union == 0 {
            1.0
        } else {
            matched as f64 / union as f64
        }
    }

    /// Counts reference leaves that a structurally-corresponding candidate
    /// leaf satisfies. Mappings align by key; sequences align by index.
    pub fn matched_leaves(&self, candidate: &Yaml) -> usize {
        match (self, candidate) {
            (MatchTree::Leaf(rule), v) if v.is_scalar() => usize::from(rule.matches(v)),
            // Empty reference containers count as one leaf and match empty
            // candidate containers (checked before the recursive arms).
            (MatchTree::Map(entries), v) if entries.is_empty() => {
                usize::from(v.map_len() == Some(0))
            }
            (MatchTree::Seq(items), v) if items.is_empty() => usize::from(v.seq_len() == Some(0)),
            (MatchTree::Map(entries), Yaml::Map(_)) => entries
                .iter()
                .map(|(k, sub)| candidate.get(k).map_or(0, |v| sub.matched_leaves(v)))
                .sum(),
            (MatchTree::Seq(items), Yaml::Seq(cand)) => items
                .iter()
                .enumerate()
                .map(|(i, sub)| cand.get(i).map_or(0, |v| sub.matched_leaves(v)))
                .sum(),
            _ => 0,
        }
    }

    /// Whether every reference leaf is matched (ignoring extra candidate
    /// content) — a one-way containment check used by unit-test authoring.
    pub fn contained_in(&self, candidate: &Yaml) -> bool {
        self.matched_leaves(candidate) == self.leaf_count()
    }
}

/// Interprets a trailing comment as a label.
fn parse_label(comment: Option<&str>, value: &Yaml) -> MatchRule {
    let Some(c) = comment else {
        return MatchRule::Exact(value.clone());
    };
    let c = c.trim();
    if c == "*" {
        return MatchRule::Wildcard;
    }
    // `v in [...]` — the list uses YAML/Python literal syntax.
    if let Some(rest) = c.strip_prefix("v in ") {
        let rest = rest.trim();
        if rest.starts_with('[') && rest.ends_with(']') {
            if let Ok(node) = parse_one(&format!("opts: {rest}\n")) {
                if let Some(Yaml::Seq(options)) = node.to_value().get("opts").cloned() {
                    return MatchRule::OneOf {
                        reference: value.clone(),
                        options,
                    };
                }
            }
        }
    }
    // Unrecognised comments are documentation, not labels.
    MatchRule::Exact(value.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ymap;

    const REF: &str = "\
apiVersion: apps/v1
kind: DaemonSet
metadata:
  name: kube-registry-proxy-modified # *
spec:
  image: ubuntu:22.04 # v in ['20.04', '22.04']
  port: 80
";

    #[test]
    fn wildcard_label_accepts_anything() {
        let tree = MatchTree::parse(REF).unwrap();
        let mut cand = crate::parse_one(REF).unwrap().to_value();
        cand.get_mut("metadata")
            .unwrap()
            .insert("name", Yaml::Str("completely-different".into()));
        assert_eq!(tree.iou(&cand), 1.0);
    }

    #[test]
    fn one_of_label_accepts_listed_values_only() {
        let tree = MatchTree::parse(REF).unwrap();
        let mut cand = crate::parse_one(REF).unwrap().to_value();
        cand.get_mut("spec")
            .unwrap()
            .insert("image", Yaml::Str("20.04".into()));
        assert_eq!(tree.iou(&cand), 1.0);
        cand.get_mut("spec")
            .unwrap()
            .insert("image", Yaml::Str("18.04".into()));
        assert!(tree.iou(&cand) < 1.0);
    }

    #[test]
    fn one_of_label_substring_form() {
        // The paper's example: either ubuntu version is correct.
        let tree = MatchTree::parse(REF).unwrap();
        let mut cand = crate::parse_one(REF).unwrap().to_value();
        cand.get_mut("spec")
            .unwrap()
            .insert("image", Yaml::Str("ubuntu:20.04".into()));
        assert_eq!(tree.iou(&cand), 1.0);
        cand.get_mut("spec")
            .unwrap()
            .insert("image", Yaml::Str("ubuntu:18.04".into()));
        assert!(tree.iou(&cand) < 1.0);
        cand.get_mut("spec")
            .unwrap()
            .insert("image", Yaml::Str("debian:22.04".into()));
        assert!(tree.iou(&cand) < 1.0);
    }

    #[test]
    fn set_label_with_integers() {
        let tree = MatchTree::parse("v: 2 # v in [2,3,4]\n").unwrap();
        assert!(tree.contained_in(&ymap! {"v" => 3i64}));
        assert!(!tree.contained_in(&ymap! {"v" => 5i64}));
    }

    #[test]
    fn exact_is_default() {
        let tree = MatchTree::parse("a: 1\nb: x\n").unwrap();
        assert_eq!(tree.iou(&ymap! {"a" => 1i64, "b" => "x"}), 1.0);
        assert!(tree.iou(&ymap! {"a" => 2i64, "b" => "x"}) < 1.0);
    }

    #[test]
    fn iou_penalizes_extra_candidate_content() {
        let tree = MatchTree::parse("a: 1\n").unwrap();
        let cand = ymap! {"a" => 1i64, "extra" => "y"};
        assert!((tree.iou(&cand) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn iou_penalizes_missing_content() {
        let tree = MatchTree::parse("a: 1\nb: 2\n").unwrap();
        let cand = ymap! {"a" => 1i64};
        assert!((tree.iou(&cand) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn iou_is_order_insensitive_for_maps() {
        let tree = MatchTree::parse("a: 1\nb: 2\n").unwrap();
        let cand = crate::parse_one("b: 2\na: 1\n").unwrap().to_value();
        assert_eq!(tree.iou(&cand), 1.0);
    }

    #[test]
    fn sequences_align_by_index() {
        let tree = MatchTree::parse("s:\n- 1\n- 2\n").unwrap();
        let good = crate::parse_one("s:\n- 1\n- 2\n").unwrap().to_value();
        let swapped = crate::parse_one("s:\n- 2\n- 1\n").unwrap().to_value();
        assert_eq!(tree.iou(&good), 1.0);
        assert!(tree.iou(&swapped) < 1.0);
    }

    #[test]
    fn int_float_are_loosely_equal() {
        let tree = MatchTree::parse("cpu: 1.0\n").unwrap();
        assert!(tree.contained_in(&ymap! {"cpu" => 1i64}));
    }

    #[test]
    fn quoted_vs_unquoted_numbers_differ() {
        // `hostPort: "5000"` and `hostPort: 5000` are different values.
        let tree = MatchTree::parse("p: \"5000\"\n").unwrap();
        assert!(!tree.contained_in(&ymap! {"p" => 5000i64}));
    }

    #[test]
    fn non_label_comment_is_ignored() {
        let tree = MatchTree::parse("a: 1 # just a note\n").unwrap();
        assert_eq!(
            tree,
            MatchTree::Map(vec![(
                "a".into(),
                MatchTree::Leaf(MatchRule::Exact(Yaml::Int(1)))
            )])
        );
    }
}
