//! Per-document string interning for the arena parse path.
//!
//! Kubernetes manifests draw their keys from a tiny repeated vocabulary
//! (`apiVersion`, `kind`, `metadata`, `name`, `spec`, `containers`, …) and
//! repeat many scalar values (`v1`, image names, label values). The legacy
//! parser allocated a fresh `String` for every occurrence; the arena
//! parser routes every scalar/key/comment through a [`StrInterner`]
//! instead, so each distinct text is stored **once per document** in a
//! single growable buffer and everything else carries a 4-byte [`Sym`].
//!
//! The interner is deliberately per-document, not global: documents are
//! parsed concurrently on every pipeline stage, a process-global table
//! would need locking on the hottest path in the system, and the k8s key
//! vocabulary is small enough that per-document deduplication already
//! captures nearly all of the win while keeping the arena trivially
//! droppable in one free.
//!
//! No external deps, no unsafe: the probe table is open-addressed linear
//! probing over FNV-1a hashes, the same hash family the content-addressed
//! score memo uses.

/// An interned string: an index into the owning [`StrInterner`]'s span
/// table. `Sym`s are only meaningful together with the interner that
/// produced them. Ids are dense and assignment-ordered: the first
/// distinct string interned is `Sym(0)`, the next `Sym(1)`, and re-interning
/// a seen string returns its original id (id stability — asserted by the
/// interner stress test).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(pub u32);

/// FNV-1a over a byte string — the hash every [`StrInterner`] probe
/// table is keyed on. Public so callers can pre-hash once (e.g. the
/// per-line hashes `PreparedDoc` caches) and probe many interners with
/// [`StrInterner::lookup_hashed`] without re-scanning the text.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const EMPTY_SLOT: u32 = u32::MAX;

/// A deduplicating string arena: one append-only byte buffer, a span
/// table, and an FNV-keyed linear-probe index.
///
/// # Examples
///
/// ```
/// use yamlkit::intern::StrInterner;
/// let mut interner = StrInterner::new();
/// let a = interner.intern("metadata");
/// let b = interner.intern("metadata");
/// assert_eq!(a, b); // deduplicated
/// assert_eq!(interner.resolve(a), "metadata");
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StrInterner {
    /// Every distinct interned string, concatenated.
    buf: String,
    /// `(start, len)` byte spans into `buf`, indexed by `Sym`.
    spans: Vec<(u32, u32)>,
    /// Open-addressed probe table of `Sym` indices (`EMPTY_SLOT` = free).
    /// Capacity is always a power of two; resized at 3/4 load.
    table: Vec<u32>,
}

impl StrInterner {
    /// An empty interner (no table allocated until the first intern).
    pub fn new() -> StrInterner {
        StrInterner::default()
    }

    /// An empty interner with room for roughly `capacity` distinct
    /// strings before the probe table rehashes.
    pub fn with_capacity(capacity: usize) -> StrInterner {
        let slots = (capacity.max(4) * 4 / 3).next_power_of_two();
        StrInterner {
            buf: String::new(),
            spans: Vec::with_capacity(capacity),
            table: vec![EMPTY_SLOT; slots],
        }
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total bytes of distinct string data held (the arena footprint).
    pub fn buffer_len(&self) -> usize {
        self.buf.len()
    }

    /// Current probe-table slot count (for load-factor assertions).
    pub fn table_capacity(&self) -> usize {
        self.table.len()
    }

    /// Interns `s`, returning its stable [`Sym`]: the existing id when the
    /// exact text was seen before, a fresh dense id otherwise.
    pub fn intern(&mut self, s: &str) -> Sym {
        if self.table.is_empty() {
            self.table = vec![EMPTY_SLOT; 16];
        } else if (self.spans.len() + 1) * 4 > self.table.len() * 3 {
            self.grow();
        }
        let mask = self.table.len() - 1;
        let mut slot = (fnv1a(s.as_bytes()) as usize) & mask;
        loop {
            let idx = self.table[slot];
            if idx == EMPTY_SLOT {
                let sym = Sym(self.spans.len() as u32);
                let start = self.buf.len() as u32;
                self.buf.push_str(s);
                self.spans.push((start, s.len() as u32));
                self.table[slot] = sym.0;
                return sym;
            }
            if self.resolve(Sym(idx)) == s {
                return Sym(idx);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Read-only probe: the [`Sym`] of `s` **if** this interner has seen
    /// it, without interning. This is how scoring maps one document's
    /// vocabulary into another's symbol space (candidate tokens into the
    /// reference's interner) with zero mutation, so lookups are safe on
    /// a shared reference-side interner.
    ///
    /// # Examples
    ///
    /// ```
    /// use yamlkit::intern::StrInterner;
    /// let mut i = StrInterner::new();
    /// let a = i.intern("spec");
    /// assert_eq!(i.lookup("spec"), Some(a));
    /// assert_eq!(i.lookup("unseen"), None);
    /// ```
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.lookup_hashed(fnv1a(s.as_bytes()), s)
    }

    /// [`StrInterner::lookup`] with the caller-supplied FNV-1a hash of
    /// `s` (from [`fnv1a`]) — the hot-path variant for callers that
    /// cached the hash (e.g. per-line hashes probed once per candidate).
    pub fn lookup_hashed(&self, hash: u64, s: &str) -> Option<Sym> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let idx = self.table[slot];
            if idx == EMPTY_SLOT {
                return None;
            }
            if self.resolve(Sym(idx)) == s {
                return Some(Sym(idx));
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The text behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        let (start, len) = self.spans[sym.0 as usize];
        &self.buf[start as usize..(start + len) as usize]
    }

    /// Doubles the probe table and reinserts every span. Spans and the
    /// buffer are untouched, so every issued [`Sym`] stays valid.
    fn grow(&mut self) {
        let new_cap = (self.table.len() * 2).max(16);
        let mut table = vec![EMPTY_SLOT; new_cap];
        let mask = new_cap - 1;
        for (i, &(start, len)) in self.spans.iter().enumerate() {
            let text = &self.buf[start as usize..(start + len) as usize];
            let mut slot = (fnv1a(text.as_bytes()) as usize) & mask;
            while table[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            table[slot] = i as u32;
        }
        self.table = table;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates_and_resolves() {
        let mut i = StrInterner::new();
        let a = i.intern("apiVersion");
        let b = i.intern("kind");
        let c = i.intern("apiVersion");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "apiVersion");
        assert_eq!(i.resolve(b), "kind");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn empty_string_interns_once() {
        let mut i = StrInterner::new();
        let a = i.intern("");
        let b = i.intern("");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "");
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_assignment_ordered() {
        let mut i = StrInterner::new();
        for n in 0..100 {
            let sym = i.intern(&format!("key-{n}"));
            assert_eq!(sym, Sym(n));
        }
    }

    #[test]
    fn lookup_is_read_only_and_exact() {
        let mut i = StrInterner::new();
        assert_eq!(i.lookup("anything"), None, "empty interner finds nothing");
        let a = i.intern("metadata");
        let before = i.len();
        assert_eq!(i.lookup("metadata"), Some(a));
        assert_eq!(i.lookup("metadat"), None);
        assert_eq!(i.lookup(""), None);
        assert_eq!(i.len(), before, "lookup must not intern");
        assert_eq!(i.lookup_hashed(fnv1a(b"metadata"), "metadata"), Some(a));
    }

    #[test]
    fn growth_preserves_symbols() {
        let mut i = StrInterner::with_capacity(4);
        let syms: Vec<Sym> = (0..1000).map(|n| i.intern(&format!("s{n}"))).collect();
        for (n, sym) in syms.iter().enumerate() {
            assert_eq!(i.resolve(*sym), format!("s{n}"));
            assert_eq!(i.intern(&format!("s{n}")), *sym);
        }
        // Load factor stays under 3/4 after growth.
        assert!(i.table_capacity() * 3 >= i.len() * 4);
    }
}
