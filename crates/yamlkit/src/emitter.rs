//! Canonical YAML emitter.
//!
//! Emits block style with two-space indentation, quoting strings only when
//! a plain scalar would be re-typed or mis-parsed. `parse(emit(v)) == v`
//! holds for every value (checked by property tests).

use crate::parser::plain_scalar;
use crate::value::{format_float, Yaml};

/// Emits a value as a YAML document (no `---` header, trailing newline).
///
/// # Examples
///
/// ```
/// use yamlkit::{ymap, Yaml};
/// let doc = ymap! { "kind" => "Pod", "spec" => ymap!{ "replicas" => 3i64 } };
/// assert_eq!(yamlkit::emit(&doc), "kind: Pod\nspec:\n  replicas: 3\n");
/// ```
pub fn emit(value: &Yaml) -> String {
    let mut out = String::new();
    match value {
        Yaml::Seq(_) | Yaml::Map(_) => emit_block(value, 0, &mut out),
        scalar => {
            out.push_str(&emit_scalar_ref(scalar));
            out.push('\n');
        }
    }
    out
}

/// Emits a multi-document stream separated by `---`.
pub fn emit_all(docs: &[Yaml]) -> String {
    let mut out = String::new();
    for (i, d) in docs.iter().enumerate() {
        if i > 0 || docs.len() > 1 {
            out.push_str("---\n");
        }
        out.push_str(&emit(d));
    }
    out
}

fn emit_block(value: &Yaml, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Yaml::Map(entries) if !entries.is_empty() => {
            for (k, v) in entries {
                out.push_str(&pad);
                out.push_str(&emit_key(k));
                out.push(':');
                emit_value_after_key(v, indent, out);
            }
        }
        Yaml::Seq(items) if !items.is_empty() => {
            for item in items {
                out.push_str(&pad);
                out.push('-');
                emit_seq_item(item, indent, out);
            }
        }
        Yaml::Map(_) => {
            out.push_str(&pad);
            out.push_str("{}\n");
        }
        Yaml::Seq(_) => {
            out.push_str(&pad);
            out.push_str("[]\n");
        }
        scalar => {
            out.push_str(&pad);
            out.push_str(&emit_scalar_ref(scalar));
            out.push('\n');
        }
    }
}

fn emit_value_after_key(value: &Yaml, indent: usize, out: &mut String) {
    match value {
        Yaml::Map(entries) if !entries.is_empty() => {
            out.push('\n');
            emit_block(value, indent + 1, out);
            let _ = entries;
        }
        Yaml::Seq(items) if !items.is_empty() => {
            out.push('\n');
            // Sequences under a key are indented one level, the dominant
            // style in Kubernetes documentation.
            emit_block(value, indent, out);
            let _ = items;
        }
        Yaml::Map(_) => out.push_str(" {}\n"),
        Yaml::Seq(_) => out.push_str(" []\n"),
        Yaml::Str(s) if s.contains('\n') => emit_literal_block(s, indent + 1, out),
        scalar => {
            out.push(' ');
            out.push_str(&emit_scalar_ref(scalar));
            out.push('\n');
        }
    }
}

fn emit_seq_item(item: &Yaml, indent: usize, out: &mut String) {
    match item {
        Yaml::Map(entries) if !entries.is_empty() => {
            // `- key: value` inline for the first entry, aligned after.
            for (i, (k, v)) in entries.iter().enumerate() {
                if i == 0 {
                    out.push(' ');
                } else {
                    out.push_str(&"  ".repeat(indent + 1));
                }
                out.push_str(&emit_key(k));
                out.push(':');
                emit_value_after_key(v, indent + 1, out);
            }
        }
        Yaml::Seq(items) if !items.is_empty() => {
            out.push('\n');
            emit_block(item, indent + 1, out);
            let _ = items;
        }
        Yaml::Map(_) => out.push_str(" {}\n"),
        Yaml::Seq(_) => out.push_str(" []\n"),
        Yaml::Str(s) if s.contains('\n') => emit_literal_block(s, indent + 1, out),
        scalar => {
            out.push(' ');
            out.push_str(&emit_scalar_ref(scalar));
            out.push('\n');
        }
    }
}

fn emit_literal_block(s: &str, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    // Choose chomping so the original string round-trips.
    if let Some(body) = s.strip_suffix('\n') {
        if body.ends_with('\n') || body.is_empty() {
            // Trailing blank lines need keep-chomping.
            out.push_str(" |+\n");
            for line in s.split('\n') {
                if line.is_empty() {
                    out.push('\n');
                } else {
                    out.push_str(&pad);
                    out.push_str(line);
                    out.push('\n');
                }
            }
            // split('\n') yields a final empty item for the trailing \n;
            // the loop already emitted it as a bare newline, remove one.
            out.pop();
            return;
        }
        out.push_str(" |\n");
        for line in body.split('\n') {
            if line.is_empty() {
                out.push('\n');
            } else {
                out.push_str(&pad);
                out.push_str(line);
                out.push('\n');
            }
        }
    } else {
        out.push_str(" |-\n");
        for line in s.split('\n') {
            if line.is_empty() {
                out.push('\n');
            } else {
                out.push_str(&pad);
                out.push_str(line);
                out.push('\n');
            }
        }
    }
}

fn emit_key(key: &str) -> String {
    if key.is_empty() || needs_quoting(key) || key.contains(": ") || key.ends_with(':') {
        quote(key)
    } else {
        key.to_owned()
    }
}

/// Emits a scalar, quoting strings that would otherwise change type or
/// structure when re-parsed.
pub fn emit_scalar(value: &Yaml) -> String {
    emit_scalar_ref(value).into_owned()
}

/// [`emit_scalar`] without the allocation for plain strings: unquoted
/// string scalars (the common case in k8s manifests) borrow straight
/// from the `Yaml` value, so `out.push_str(&emit_scalar_ref(v))` copies
/// the bytes exactly once.
pub fn emit_scalar_ref(value: &Yaml) -> std::borrow::Cow<'_, str> {
    use std::borrow::Cow;
    match value {
        Yaml::Null => Cow::Borrowed("null"),
        Yaml::Bool(true) => Cow::Borrowed("true"),
        Yaml::Bool(false) => Cow::Borrowed("false"),
        Yaml::Int(i) => Cow::Owned(i.to_string()),
        Yaml::Float(f) => Cow::Owned(format_float(*f)),
        Yaml::Str(s) => {
            if needs_quoting(s) {
                Cow::Owned(quote(s))
            } else {
                Cow::Borrowed(s.as_str())
            }
        }
        Yaml::Seq(_) | Yaml::Map(_) => unreachable!("collections handled by emit_block"),
    }
}

fn needs_quoting(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    // Would re-type as non-string?
    if !matches!(plain_scalar(s), Yaml::Str(_)) {
        return true;
    }
    let first = s.chars().next().unwrap();
    if matches!(
        first,
        '&' | '*'
            | '!'
            | '%'
            | '@'
            | '`'
            | '"'
            | '\''
            | '['
            | ']'
            | '{'
            | '}'
            | '#'
            | '|'
            | '>'
            | '-'
            | '?'
            | ','
            | ' '
    ) && !(first == '-' && s.len() > 1 && !s.starts_with("- "))
    {
        return true;
    }
    if s.ends_with(' ') {
        return true;
    }
    // `: ` or trailing `:` would be taken as a mapping; ` #` starts a comment.
    s.contains(": ") || s.ends_with(':') || s.contains(" #") || s.contains('\n') || s.contains('\t')
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_one, ymap, yseq};

    fn round_trip(v: &Yaml) {
        let text = emit(v);
        let back = parse_one(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(&back.to_value(), v, "round trip failed for:\n{text}");
    }

    #[test]
    fn emits_nested_map() {
        let v = ymap! { "metadata" => ymap!{ "name" => "x" }, "kind" => "Pod" };
        assert_eq!(emit(&v), "metadata:\n  name: x\nkind: Pod\n");
    }

    #[test]
    fn emits_sequence_of_maps() {
        let v = ymap! { "containers" => Yaml::Seq(vec![ymap!{"name" => "a", "image" => "nginx"}]) };
        assert_eq!(emit(&v), "containers:\n- name: a\n  image: nginx\n");
    }

    #[test]
    fn quotes_numeric_looking_strings() {
        let v = ymap! { "port" => "5000", "v" => "true", "n" => "null" };
        let text = emit(&v);
        assert!(text.contains("port: \"5000\""), "{text}");
        round_trip(&v);
    }

    #[test]
    fn round_trips_special_strings() {
        for s in [
            "a: b",
            "a #c",
            "- item",
            "*alias",
            "&anchor",
            "100m",
            "",
            " lead",
            "trail ",
            "it's",
            "he said \"hi\"",
            "line1\nline2",
            ":",
            "a:",
        ] {
            round_trip(&ymap! { "k" => s });
        }
    }

    #[test]
    fn round_trips_multiline_strings() {
        for s in ["a\nb", "a\nb\n", "a\n\nb\n", "a\nb\n\n"] {
            round_trip(&ymap! { "k" => s });
        }
    }

    #[test]
    fn round_trips_deep_structure() {
        let v = ymap! {
            "spec" => ymap!{
                "replicas" => 3i64,
                "template" => ymap!{
                    "containers" => Yaml::Seq(vec![
                        ymap!{"name" => "c", "ports" => Yaml::Seq(vec![ymap!{"containerPort" => 80i64}])},
                    ]),
                },
            },
            "empty_map" => Yaml::Map(vec![]),
            "empty_seq" => Yaml::Seq(vec![]),
            "floats" => yseq![1.5f64, 2.0f64],
        };
        round_trip(&v);
    }

    #[test]
    fn emit_all_separates_documents() {
        let docs = vec![ymap! {"a" => 1i64}, ymap! {"b" => 2i64}];
        let text = emit_all(&docs);
        assert_eq!(crate::parse(&text).unwrap().len(), 2);
    }

    #[test]
    fn top_level_scalar() {
        assert_eq!(emit(&Yaml::Int(42)), "42\n");
        assert_eq!(emit(&Yaml::Str("x".into())), "x\n");
    }
}
