//! The parse-once document model.
//!
//! Every layer of the benchmark used to re-parse the same candidate text:
//! the YAML-aware metrics parsed it twice (kv-exact and kv-wildcard), the
//! shell substrate parsed it to validate it, and `kubectl apply` inside
//! the simulated cluster parsed it again — up to five parses per
//! evaluation, dominating static-scoring wall-clock the same way the
//! paper's cost analysis (§5) shows YAML handling dominating evaluation
//! cost. [`PreparedDoc`] is the fix: one structure that parses the text
//! **once** and caches every derived view the pipeline needs —
//!
//! * the parsed node tree (comments attached, so reference match labels
//!   survive) and the plain [`Yaml`] values behind an `Arc` for
//!   zero-copy sharing with the cluster simulator;
//! * the BLEU token stream and the line table as byte spans into the
//!   source (no per-token allocation, computed once);
//! * the scalar leaf count the wildcard metric's IoU denominator needs;
//! * the FNV-1a [`content_hash`] the score memo and response caches key
//!   on.
//!
//! A `PreparedDoc` is immutable and cheap to share: build it once per
//! candidate (or per reference, see `cescore::PreparedRef`) and pass
//! `Arc<PreparedDoc>` between pipeline stages.

use std::sync::{Arc, OnceLock};

use crate::arena::{parse_arena, ArenaParts};
use crate::intern::{fnv1a, StrInterner, Sym};
use crate::labels::MatchTree;
use crate::parser::{Node, ParseYamlError};
use crate::value::Yaml;

/// The BLEU token stream of one document as dense interned symbols: a
/// per-document [`StrInterner`] plus one [`Sym`] per token, in stream
/// order. Scoring kernels run on the `u32` ids instead of `&str` slices
/// — n-gram windows pack into fixed-width integers and line/token
/// equality becomes an integer compare. Symbols are only meaningful
/// against [`SymStream::interner`]; cross-document comparison goes
/// through [`StrInterner::lookup`] on the *other* side's interner.
#[derive(Debug, Clone)]
pub struct SymStream {
    interner: StrInterner,
    syms: Vec<Sym>,
}

impl SymStream {
    /// Interns every token of `text` (per [`token_spans`] segmentation)
    /// into a fresh per-document interner.
    fn from_spans(text: &str, spans: &[(usize, usize)]) -> SymStream {
        let mut interner = StrInterner::with_capacity(32);
        let syms = spans
            .iter()
            .map(|&(s, e)| interner.intern(&text[s..e]))
            .collect();
        SymStream { interner, syms }
    }

    /// The per-document interner the symbols resolve against.
    pub fn interner(&self) -> &StrInterner {
        &self.interner
    }

    /// The token stream as symbols, one per token.
    pub fn syms(&self) -> &[Sym] {
        &self.syms
    }

    /// Number of tokens in the stream.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Whether the document tokenizes to nothing.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }
}

/// 64-bit FNV-1a hash of a byte string — the content-addressing hash the
/// whole pipeline keys caches on. Stable across processes and platforms
/// (unlike `DefaultHasher`), cheap, and collision-safe enough for
/// memoization keys drawn from a few thousand distinct YAML documents.
///
/// # Examples
///
/// ```
/// assert_eq!(yamlkit::doc::content_hash(""), 0xcbf29ce484222325);
/// assert_ne!(yamlkit::doc::content_hash("a"), yamlkit::doc::content_hash("b"));
/// ```
pub fn content_hash(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Byte spans of the BLEU token stream: whitespace-separated words with
/// YAML/JSON punctuation (`:,[]{}"'-=`) split out as individual tokens.
/// Identical segmentation to `cescore::tokenize_ref`, which delegates
/// here — every span indexes into `text`.
pub fn token_spans(text: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start: Option<usize> = None;
    for (i, c) in text.char_indices() {
        match c {
            c if c.is_whitespace() => {
                if let Some(s) = start.take() {
                    spans.push((s, i));
                }
            }
            ':' | ',' | '[' | ']' | '{' | '}' | '"' | '\'' | '-' | '=' => {
                if let Some(s) = start.take() {
                    spans.push((s, i));
                }
                spans.push((i, i + c.len_utf8()));
            }
            _ => {
                if start.is_none() {
                    start = Some(i);
                }
            }
        }
    }
    if let Some(s) = start {
        spans.push((s, text.len()));
    }
    spans
}

/// Byte spans of the line table, matching `str::lines` exactly: split at
/// `\n`, a preceding `\r` stripped, the final line ending optional.
fn line_spans(text: &str) -> Vec<(usize, usize)> {
    let bytes = text.as_bytes();
    let mut spans = Vec::new();
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            let end = if i > start && bytes[i - 1] == b'\r' {
                i - 1
            } else {
                i
            };
            spans.push((start, end));
            start = i + 1;
        }
    }
    if start < bytes.len() {
        spans.push((start, bytes.len()));
    }
    spans
}

/// A YAML text parsed exactly once, with every derived view the
/// evaluation pipeline needs cached alongside.
///
/// Construction never fails: unparseable text is recorded as a
/// [`parse_error`](PreparedDoc::parse_error) (with empty node/value
/// views) so the document can still travel through text-level metrics
/// and substrate execution, which score garbage as garbage rather than
/// erroring out.
///
/// # Examples
///
/// ```
/// use yamlkit::doc::PreparedDoc;
///
/// let doc = PreparedDoc::new("kind: Pod\nmetadata:\n  name: web\n");
/// assert!(doc.parses());
/// assert_eq!(doc.values().len(), 1);
/// assert_eq!(doc.tokens()[0], "kind");
/// assert_eq!(doc.content_hash(), yamlkit::doc::content_hash(doc.text()));
///
/// let bad = PreparedDoc::new("kind: [unclosed\n");
/// assert!(!bad.parses());
/// assert!(bad.values().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PreparedDoc {
    source: String,
    /// The arena parse is the backing store: a flat node table with
    /// interned strings (see [`crate::arena`]). Everything structural —
    /// leaf counts, match trees, the `Node`/`Yaml` views — reads from it.
    arena: ArenaParts,
    error: Option<ParseYamlError>,
    /// `Node`/`Yaml` tree views, materialized from the arena on first
    /// use: consumers that stay on the arena (leaf counts, match trees)
    /// or only need text-level views never build the boxed trees at all.
    nodes: OnceLock<Arc<Vec<Node>>>,
    values: OnceLock<Arc<Vec<Yaml>>>,
    /// Token/line span tables, computed on first use: documents that only
    /// ever reach a substrate (pass@k samples, batch jobs) never pay the
    /// tokenization scans; documents that reach static scoring compute
    /// them once and reuse them for every metric thereafter.
    tokens: OnceLock<Vec<(usize, usize)>>,
    lines: OnceLock<Vec<(usize, usize)>>,
    /// The interned token stream, built over the token spans on first
    /// use — the symbol-level view the scoring kernels run on.
    syms: OnceLock<SymStream>,
    /// FNV-1a hash of each line (same segmentation as `lines`), computed
    /// once — the edit-distance kernel probes a reference's line index
    /// with these instead of re-hashing the candidate per pair.
    line_hashes: OnceLock<Vec<u64>>,
    leaf_count: usize,
    hash: u64,
}

impl PreparedDoc {
    /// Parses `source` once (into the arena) and caches every derived view.
    pub fn new(source: impl Into<String>) -> PreparedDoc {
        let source = source.into();
        let (arena, error) = match parse_arena(&source) {
            Ok(parts) => (parts, None),
            Err(e) => (ArenaParts::default(), Some(e)),
        };
        let leaf_count = arena.roots.iter().map(|&r| arena.leaf_count(r)).sum();
        let hash = content_hash(&source);
        PreparedDoc {
            arena,
            error,
            nodes: OnceLock::new(),
            values: OnceLock::new(),
            tokens: OnceLock::new(),
            lines: OnceLock::new(),
            syms: OnceLock::new(),
            line_hashes: OnceLock::new(),
            leaf_count,
            hash,
            source,
        }
    }

    /// [`PreparedDoc::new`] wrapped in an `Arc`, the shape pipeline
    /// stages pass between threads.
    pub fn shared(source: impl Into<String>) -> Arc<PreparedDoc> {
        Arc::new(PreparedDoc::new(source))
    }

    /// The original text, untouched.
    pub fn text(&self) -> &str {
        &self.source
    }

    /// Whether the text parsed as YAML.
    pub fn parses(&self) -> bool {
        self.error.is_none()
    }

    /// The parse error, when the text did not parse.
    pub fn parse_error(&self) -> Option<&ParseYamlError> {
        self.error.as_ref()
    }

    /// The parsed node trees (comments attached), one per document in the
    /// stream; empty when the text did not parse. Materialized from the
    /// arena on first use, then cached.
    pub fn nodes(&self) -> &[Node] {
        self.nodes.get_or_init(|| {
            Arc::new(
                self.arena
                    .roots
                    .iter()
                    .map(|&r| self.arena.node_to_node(r))
                    .collect(),
            )
        })
    }

    /// The plain values, one per document; empty when the text did not
    /// parse. Materialized from the arena on first use, then cached.
    pub fn values(&self) -> &[Yaml] {
        self.values_arc()
    }

    fn values_arc(&self) -> &Arc<Vec<Yaml>> {
        self.values.get_or_init(|| {
            Arc::new(
                self.arena
                    .roots
                    .iter()
                    .map(|&r| self.arena.node_to_value(r))
                    .collect(),
            )
        })
    }

    /// The values behind their shared allocation — hand this to another
    /// component (e.g. a simulated cluster's parse store) without deep
    /// copying the trees.
    pub fn values_shared(&self) -> Arc<Vec<Yaml>> {
        Arc::clone(self.values_arc())
    }

    /// The reference match trees (one per document), built by walking the
    /// arena directly — label scoring never needs the boxed [`Node`]
    /// trees. Empty when the text did not parse.
    pub fn match_trees(&self) -> Vec<MatchTree> {
        self.arena
            .roots
            .iter()
            .map(|&r| MatchTree::from_parts(&self.arena, r))
            .collect()
    }

    /// The cached BLEU token stream as slices of [`text`](PreparedDoc::text)
    /// (tokenized once, on first use).
    pub fn tokens(&self) -> Vec<&str> {
        self.tokens
            .get_or_init(|| token_spans(&self.source))
            .iter()
            .map(|&(s, e)| &self.source[s..e])
            .collect()
    }

    /// The cached line table as slices of [`text`](PreparedDoc::text)
    /// (identical to `text().lines()`; scanned once, on first use).
    pub fn lines(&self) -> Vec<&str> {
        self.lines
            .get_or_init(|| line_spans(&self.source))
            .iter()
            .map(|&(s, e)| &self.source[s..e])
            .collect()
    }

    /// The interned symbol view of the token stream (built once, on
    /// first use): token text resolves through the stream's per-document
    /// interner, and `syms()[i]` corresponds 1:1 to `tokens()[i]`.
    pub fn sym_stream(&self) -> &SymStream {
        self.syms.get_or_init(|| {
            let spans = self.tokens.get_or_init(|| token_spans(&self.source));
            SymStream::from_spans(&self.source, spans)
        })
    }

    /// FNV-1a hash of each line of [`lines`](PreparedDoc::lines)
    /// (hashed once, on first use) — pre-hashed probes for
    /// [`crate::intern::StrInterner::lookup_hashed`] against a
    /// reference-side line index.
    pub fn line_hashes(&self) -> &[u64] {
        self.line_hashes.get_or_init(|| {
            self.lines
                .get_or_init(|| line_spans(&self.source))
                .iter()
                .map(|&(s, e)| fnv1a(&self.source.as_bytes()[s..e]))
                .collect()
        })
    }

    /// Total scalar-leaf count across all documents (the wildcard
    /// metric's candidate-side union term).
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// The FNV-1a hash of the source text — the key the score memo and
    /// the service response cache address this document by.
    pub fn content_hash(&self) -> u64 {
        self.hash
    }
}

impl PartialEq for PreparedDoc {
    /// Documents are equal when their source text is: every cached view
    /// is a pure function of the text.
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.source == other.source
    }
}

impl Eq for PreparedDoc {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_matches_known_fnv_vectors() {
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(content_hash("kind: Pod"), content_hash("kind: Pod\n"));
        assert_eq!(content_hash("a"), content_hash("a"));
    }

    #[test]
    fn prepared_doc_caches_parse_and_views() {
        let text = "a: 1\n---\nb:\n- x\n- y\n";
        let doc = PreparedDoc::new(text);
        assert!(doc.parses());
        assert_eq!(doc.values().len(), 2);
        assert_eq!(doc.nodes().len(), 2);
        assert_eq!(doc.leaf_count(), 3);
        assert_eq!(doc.content_hash(), content_hash(text));
        assert_eq!(doc.text(), text);
    }

    #[test]
    fn unparseable_text_records_the_error() {
        let doc = PreparedDoc::new("a: [1,\n");
        assert!(!doc.parses());
        assert!(doc.parse_error().is_some());
        assert!(doc.values().is_empty());
        assert!(doc.nodes().is_empty());
        assert_eq!(doc.leaf_count(), 0);
        // Text-level views still work on garbage.
        assert!(!doc.tokens().is_empty());
        assert_eq!(doc.lines().len(), 1);
    }

    #[test]
    fn lines_match_std_lines() {
        for text in [
            "",
            "a",
            "a\n",
            "a\nb",
            "a\r\nb\r\n",
            "a\r",
            "\n\n",
            "unicode: héllo\n wörld",
            "mixed\r\nendings\nhere\r\n",
        ] {
            let doc = PreparedDoc::new(text);
            let want: Vec<&str> = text.lines().collect();
            assert_eq!(doc.lines(), want, "line table diverges on {text:?}");
        }
    }

    #[test]
    fn tokens_index_the_source() {
        let doc = PreparedDoc::new("name: web\nports: [80, 443]");
        assert_eq!(
            doc.tokens(),
            vec!["name", ":", "web", "ports", ":", "[", "80", ",", "443", "]"]
        );
    }

    #[test]
    fn sym_stream_mirrors_tokens() {
        let doc = PreparedDoc::new("name: web\nname: web\nports: [80, 443]");
        let tokens = doc.tokens();
        let stream = doc.sym_stream();
        assert_eq!(stream.len(), tokens.len());
        for (sym, token) in stream.syms().iter().zip(&tokens) {
            assert_eq!(stream.interner().resolve(*sym), *token);
        }
        // Repeated tokens share one symbol.
        assert_eq!(stream.syms()[0], stream.syms()[3], "name == name");
        assert!(stream.interner().len() < tokens.len());
        assert!(!stream.is_empty());
        assert!(PreparedDoc::new("").sym_stream().is_empty());
    }

    #[test]
    fn line_hashes_match_line_table() {
        let doc = PreparedDoc::new("a: 1\r\nb: 2\na: 1\n");
        let lines = doc.lines();
        let hashes = doc.line_hashes();
        assert_eq!(hashes.len(), lines.len());
        for (h, l) in hashes.iter().zip(&lines) {
            assert_eq!(*h, crate::intern::fnv1a(l.as_bytes()));
        }
        assert_eq!(hashes[0], hashes[2], "identical lines hash identically");
    }

    #[test]
    fn values_shared_is_the_same_allocation() {
        let doc = PreparedDoc::new("a: 1\n");
        assert!(Arc::ptr_eq(&doc.values_shared(), &doc.values_shared()));
    }

    #[test]
    fn equality_is_textual() {
        assert_eq!(PreparedDoc::new("a: 1\n"), PreparedDoc::new("a: 1\n"));
        assert_ne!(PreparedDoc::new("a: 1\n"), PreparedDoc::new("a:  1\n"));
    }
}
