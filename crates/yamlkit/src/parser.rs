//! An indentation-driven parser for the YAML subset used by cloud-native
//! configuration (Kubernetes, Istio, Envoy).
//!
//! Supported: block mappings and sequences, flow collections (`[..]`,
//! `{..}`), plain / single-quoted / double-quoted scalars, literal (`|`) and
//! folded (`>`) block scalars with chomping indicators, comments (captured
//! and attached to nodes so reference-YAML match labels survive parsing),
//! multi-document streams (`---` / `...`), anchors (`&a`) and aliases
//! (`*a`), and `!!tag` prefixes (parsed, ignored).
//!
//! Not supported (not used by the target dialects): complex keys (`? `),
//! block scalars with explicit indentation indicators, and directives other
//! than `%YAML` (skipped).

use std::collections::HashMap;
use std::fmt;

use crate::value::Yaml;

/// Error produced when a document cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseYamlError {
    line: usize,
    message: String,
}

impl ParseYamlError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseYamlError {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line on which the error was detected.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseYamlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "yaml parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseYamlError {}

/// A parsed node: a value plus the trailing comment that annotated it.
///
/// Comments are what carry the CloudEval-YAML reference labels (`# *`,
/// `# v in [...]`), so the parser keeps them attached to the exact scalar
/// they follow.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The node's structure.
    pub kind: NodeKind,
    /// Trailing `# ...` comment on the line that introduced this node.
    pub comment: Option<String>,
    /// 1-based source line.
    pub line: usize,
}

/// Structure of a [`Node`].
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A scalar leaf.
    Scalar(Yaml),
    /// A sequence of nodes.
    Seq(Vec<Node>),
    /// A mapping with string keys, order preserved.
    Map(Vec<(String, Node)>),
}

impl Node {
    fn scalar(value: Yaml, comment: Option<String>, line: usize) -> Self {
        Node::from_value(value, comment, line)
    }

    /// Lifts a plain value into a structural node tree (flow collections
    /// parsed inline become `Seq`/`Map` nodes, not scalar leaves).
    fn from_value(value: Yaml, comment: Option<String>, line: usize) -> Self {
        match value {
            Yaml::Seq(items) => Node {
                kind: NodeKind::Seq(
                    items
                        .into_iter()
                        .map(|v| Node::from_value(v, None, line))
                        .collect(),
                ),
                comment,
                line,
            },
            Yaml::Map(entries) => Node {
                kind: NodeKind::Map(
                    entries
                        .into_iter()
                        .map(|(k, v)| (k, Node::from_value(v, None, line)))
                        .collect(),
                ),
                comment,
                line,
            },
            scalar => Node::leaf(scalar, comment, line),
        }
    }

    fn leaf(value: Yaml, comment: Option<String>, line: usize) -> Self {
        Node {
            kind: NodeKind::Scalar(value),
            comment,
            line,
        }
    }

    /// Projects the annotated tree to a plain [`Yaml`] value.
    pub fn to_value(&self) -> Yaml {
        match &self.kind {
            NodeKind::Scalar(v) => v.clone(),
            NodeKind::Seq(items) => Yaml::Seq(items.iter().map(Node::to_value).collect()),
            NodeKind::Map(entries) => Yaml::Map(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_value()))
                    .collect(),
            ),
        }
    }
}

/// Parses every document in a YAML stream.
///
/// Since the arena refactor this is a thin wrapper: the stream is parsed
/// once by the span-based arena path ([`crate::arena`]) and the annotated
/// [`Node`] trees are materialized from it. Output is identical to
/// [`parse_legacy`] (proved by the proptest equivalence suite), without
/// the per-line/per-token `String` churn.
///
/// # Errors
///
/// Returns [`ParseYamlError`] on malformed input: bad indentation, unclosed
/// quotes or flow collections, tab indentation, or unknown aliases.
///
/// # Examples
///
/// ```
/// let docs = yamlkit::parse("a: 1\n---\nb: 2\n")?;
/// assert_eq!(docs.len(), 2);
/// # Ok::<(), yamlkit::ParseYamlError>(())
/// ```
pub fn parse(source: &str) -> Result<Vec<Node>, ParseYamlError> {
    let parts = crate::arena::parse_arena(source)?;
    Ok(parts.roots.iter().map(|&r| parts.node_to_node(r)).collect())
}

/// The pre-arena recursive-descent parser, retained verbatim as the
/// correctness oracle for the equivalence suite and as the baseline leg
/// of the `parse_engine` criterion group. Semantics are identical to
/// [`parse`]; allocation behavior is not (per-line `String`s, per-token
/// `String`s, boxed `Node` trees).
///
/// # Errors
///
/// Same failure modes and diagnostics as [`parse`].
pub fn parse_legacy(source: &str) -> Result<Vec<Node>, ParseYamlError> {
    let lines = split_lines(source)?;
    let mut docs = Vec::new();
    let mut start = 0;
    let mut chunk: Vec<Line> = Vec::new();
    let flush = |chunk: &mut Vec<Line>, docs: &mut Vec<Node>| -> Result<(), ParseYamlError> {
        if chunk.iter().any(|l| !l.is_blank()) {
            let mut parser = Parser::new(std::mem::take(chunk));
            docs.push(parser.parse_document()?);
        } else {
            chunk.clear();
        }
        Ok(())
    };
    for line in lines {
        let content = line.content.trim_end();
        if line.indent == 0 && (content == "---" || content.starts_with("--- ")) {
            flush(&mut chunk, &mut docs)?;
            // `--- value` puts an inline document on the separator line.
            let rest = content.trim_start_matches("---").trim_start();
            if !rest.is_empty() {
                let mut inline = line.clone();
                inline.content = rest.to_owned();
                inline.indent = 4; // synthetic; only relative depth matters
                chunk.push(inline);
            }
            start = line.number;
            continue;
        }
        if line.indent == 0 && content == "..." {
            flush(&mut chunk, &mut docs)?;
            continue;
        }
        if line.indent == 0 && content.starts_with('%') && chunk.is_empty() {
            continue; // %YAML / %TAG directives
        }
        chunk.push(line);
    }
    let _ = start;
    flush(&mut chunk, &mut docs)?;
    Ok(docs)
}

/// Parses a stream expected to contain exactly one document.
///
/// # Errors
///
/// Fails if the stream is empty, holds more than one document, or any
/// document is malformed.
pub fn parse_one(source: &str) -> Result<Node, ParseYamlError> {
    let mut docs = parse(source)?;
    match docs.len() {
        0 => Err(ParseYamlError::new(1, "empty yaml stream")),
        1 => Ok(docs.remove(0)),
        n => Err(ParseYamlError::new(
            1,
            format!("expected 1 document, found {n}"),
        )),
    }
}

/// A physical line split into indentation, content and trailing comment.
#[derive(Debug, Clone)]
struct Line {
    number: usize,
    indent: usize,
    content: String,
    comment: Option<String>,
}

impl Line {
    fn is_blank(&self) -> bool {
        self.content.is_empty()
    }
}

/// Splits source into [`Line`]s, detaching trailing comments (respecting
/// quotes) and rejecting tab indentation.
fn split_lines(source: &str) -> Result<Vec<Line>, ParseYamlError> {
    let mut out = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let number = i + 1;
        let indent = raw.chars().take_while(|c| *c == ' ').count();
        if raw[..raw.len().min(indent + 1)].contains('\t') && raw.trim() != "" {
            // A tab before content is illegal YAML indentation.
            let before = &raw[..raw
                .find(|c: char| c != ' ' && c != '\t')
                .unwrap_or(raw.len())];
            if before.contains('\t') {
                return Err(ParseYamlError::new(number, "tab used for indentation"));
            }
        }
        let body = &raw[indent..];
        let (content, comment) = detach_comment(body);
        out.push(Line {
            number,
            indent,
            content: content.trim_end().to_owned(),
            comment,
        });
    }
    Ok(out)
}

/// Splits `foo: bar # comment` into (`foo: bar`, Some(`comment`)), leaving
/// `#` inside quotes alone. A comment `#` must be at the start of the body
/// or preceded by whitespace.
fn detach_comment(body: &str) -> (String, Option<String>) {
    let mut in_single = false;
    let mut in_double = false;
    let mut prev: Option<char> = None;
    let chars: Vec<(usize, char)> = body.char_indices().collect();
    let mut k = 0;
    while k < chars.len() {
        let (idx, c) = chars[k];
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => {
                if prev != Some('\\') || !in_double {
                    in_double = !in_double;
                } else {
                    in_double = !in_double; // escaped quote toggles handled below
                }
            }
            '#' if !in_single && !in_double => {
                let at_start = idx == 0;
                let after_space = prev.is_some_and(|p| p == ' ' || p == '\t');
                if at_start || after_space {
                    let comment = body[idx + 1..].trim().to_owned();
                    let content = body[..idx].to_owned();
                    let comment = if comment.is_empty() {
                        Some(String::new())
                    } else {
                        Some(comment)
                    };
                    return (content, comment);
                }
            }
            '\\' if in_double => {
                // Skip the escaped character entirely.
                k += 2;
                prev = Some('\\');
                continue;
            }
            _ => {}
        }
        prev = Some(c);
        k += 1;
    }
    (body.to_owned(), None)
}

struct Parser {
    lines: Vec<Line>,
    pos: usize,
    anchors: HashMap<String, Node>,
}

impl Parser {
    fn new(lines: Vec<Line>) -> Self {
        Parser {
            lines,
            pos: 0,
            anchors: HashMap::new(),
        }
    }

    fn parse_document(&mut self) -> Result<Node, ParseYamlError> {
        self.skip_blanks();
        if self.pos >= self.lines.len() {
            return Ok(Node::scalar(Yaml::Null, None, 1));
        }
        let indent = self.lines[self.pos].indent;
        let node = self.parse_block(indent)?;
        self.skip_blanks();
        if let Some(line) = self.lines.get(self.pos) {
            return Err(ParseYamlError::new(
                line.number,
                format!("unexpected content after document: {:?}", line.content),
            ));
        }
        Ok(node)
    }

    fn skip_blanks(&mut self) {
        while self
            .pos
            .checked_sub(0)
            .and_then(|p| self.lines.get(p))
            .is_some_and(Line::is_blank)
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<&Line> {
        self.skip_blanks();
        self.lines.get(self.pos)
    }

    /// Parses a block node whose first line sits at exactly `indent`.
    fn parse_block(&mut self, indent: usize) -> Result<Node, ParseYamlError> {
        let line = match self.peek() {
            Some(l) if l.indent == indent => l.clone(),
            Some(l) => {
                return Err(ParseYamlError::new(
                    l.number,
                    format!("expected indent {indent}, found {}", l.indent),
                ))
            }
            None => return Ok(Node::scalar(Yaml::Null, None, 0)),
        };
        if line.content == "-" || line.content.starts_with("- ") {
            self.parse_sequence(indent)
        } else if let Some((key, rest)) = split_key(&line.content) {
            let _ = (key, rest);
            self.parse_mapping(indent)
        } else {
            // A bare scalar document (possibly multi-line plain scalar).
            self.pos += 1;
            let value = parse_scalar_token(&line.content, line.number, &mut self.anchors)?;
            Ok(Node::scalar(value, line.comment.clone(), line.number))
        }
    }

    fn parse_sequence(&mut self, indent: usize) -> Result<Node, ParseYamlError> {
        let mut items = Vec::new();
        let first_line = self.peek().map(|l| l.number).unwrap_or(0);
        loop {
            let line = match self.peek() {
                Some(l)
                    if l.indent == indent && (l.content == "-" || l.content.starts_with("- ")) =>
                {
                    l.clone()
                }
                Some(l) if l.indent > indent => {
                    return Err(ParseYamlError::new(
                        l.number,
                        "bad indentation inside sequence",
                    ))
                }
                _ => break,
            };
            let after = if line.content == "-" {
                ""
            } else {
                line.content[2..].trim_start()
            };
            if after.is_empty() {
                // Item body is the nested block (if any) at deeper indent.
                self.pos += 1;
                match self.peek() {
                    Some(next) if next.indent > indent => {
                        let child_indent = next.indent;
                        items.push(self.parse_block(child_indent)?);
                    }
                    _ => items.push(Node::scalar(Yaml::Null, line.comment.clone(), line.number)),
                }
            } else if let Some(header) = BlockScalarHeader::parse(after) {
                self.pos += 1;
                let text = self.parse_block_scalar(indent, header, line.number)?;
                items.push(Node::scalar(
                    Yaml::Str(text),
                    line.comment.clone(),
                    line.number,
                ));
            } else {
                // Re-indent the content after `- ` and parse it as a block
                // that may continue on following, deeper-indented lines.
                let inner_indent = indent + (line.content.len() - after.len());
                let mut rewritten = line.clone();
                rewritten.indent = inner_indent;
                rewritten.content = after.to_owned();
                self.lines[self.pos] = rewritten;
                items.push(self.parse_block(inner_indent)?);
            }
        }
        Ok(Node {
            kind: NodeKind::Seq(items),
            comment: None,
            line: first_line,
        })
    }

    fn parse_mapping(&mut self, indent: usize) -> Result<Node, ParseYamlError> {
        let mut entries: Vec<(String, Node)> = Vec::new();
        let first_line = self.peek().map(|l| l.number).unwrap_or(0);
        loop {
            let line = match self.peek() {
                Some(l) if l.indent == indent => l.clone(),
                Some(l) if l.indent > indent => {
                    return Err(ParseYamlError::new(
                        l.number,
                        "bad indentation inside mapping",
                    ))
                }
                _ => break,
            };
            let Some((key, rest)) = split_key(&line.content) else {
                break;
            };
            let key = unquote_key_text(key, line.number)?;
            self.pos += 1;
            let rest = rest.trim();
            let node = if rest.is_empty() {
                // Value is a nested block, or null when nothing deeper follows.
                match self.peek() {
                    Some(next) if next.indent > indent => {
                        let child = next.indent;
                        let mut node = self.parse_block(child)?;
                        if node.comment.is_none() {
                            node.comment = line.comment.clone();
                        }
                        node
                    }
                    // `key:` followed by a sequence at the *same* indent is
                    // legal YAML (common in hand-written manifests).
                    Some(next)
                        if next.indent == indent
                            && (next.content == "-" || next.content.starts_with("- ")) =>
                    {
                        self.parse_sequence(indent)?
                    }
                    _ => Node::scalar(Yaml::Null, line.comment.clone(), line.number),
                }
            } else if let Some(header) = BlockScalarHeader::parse(rest) {
                let text = self.parse_block_scalar(indent, header, line.number)?;
                Node::scalar(Yaml::Str(text), line.comment.clone(), line.number)
            } else {
                let value = parse_scalar_token(rest, line.number, &mut self.anchors)?;
                Node::scalar(value, line.comment.clone(), line.number)
            };
            entries.push((key, node));
        }
        if entries.is_empty() {
            let n = self.lines.get(self.pos).map(|l| l.number).unwrap_or(0);
            return Err(ParseYamlError::new(n, "expected mapping entry"));
        }
        Ok(Node {
            kind: NodeKind::Map(entries),
            comment: None,
            line: first_line,
        })
    }

    /// Reads the body of a `|` / `>` block scalar: all following lines that
    /// are blank or indented deeper than the key line.
    fn parse_block_scalar(
        &mut self,
        key_indent: usize,
        header: BlockScalarHeader,
        _line: usize,
    ) -> Result<String, ParseYamlError> {
        let mut raw: Vec<(usize, String)> = Vec::new();
        while let Some(l) = self.lines.get(self.pos) {
            if l.is_blank() {
                raw.push((usize::MAX, String::new()));
                self.pos += 1;
                continue;
            }
            if l.indent <= key_indent {
                break;
            }
            // Comments are content inside block scalars: reassemble.
            let mut text = l.content.clone();
            if let Some(c) = &l.comment {
                if c.is_empty() {
                    text.push_str(" #");
                } else {
                    text.push_str(" # ");
                    text.push_str(c);
                }
            }
            raw.push((l.indent, text));
            self.pos += 1;
        }
        // Trim trailing blank markers; they matter only for keep-chomping.
        let mut trailing_blanks = 0;
        while raw.last().is_some_and(|(i, _)| *i == usize::MAX) {
            raw.pop();
            trailing_blanks += 1;
        }
        let base = raw
            .iter()
            .filter(|(i, _)| *i != usize::MAX)
            .map(|(i, _)| *i)
            .min()
            .unwrap_or(key_indent + 1);
        let lines: Vec<String> = raw
            .into_iter()
            .map(|(i, text)| {
                if i == usize::MAX {
                    String::new()
                } else {
                    format!("{}{}", " ".repeat(i - base), text)
                }
            })
            .collect();
        let mut body = if header.folded {
            fold_lines(&lines)
        } else {
            lines.join("\n")
        };
        match header.chomp {
            Chomp::Strip => {}
            Chomp::Clip => {
                if !body.is_empty() {
                    body.push('\n');
                }
            }
            Chomp::Keep => {
                body.push('\n');
                for _ in 0..trailing_blanks {
                    body.push('\n');
                }
            }
        }
        Ok(body)
    }
}

/// Folds lines the way `>` block scalars do: single newlines become spaces,
/// blank lines become newlines, more-indented lines stay literal.
pub(crate) fn fold_lines(lines: &[String]) -> String {
    let mut out = String::new();
    let mut prev_blank = true;
    let mut prev_indented = false;
    for (i, l) in lines.iter().enumerate() {
        let indented = l.starts_with(' ');
        if i == 0 {
            out.push_str(l);
        } else if l.is_empty() {
            out.push('\n');
        } else if prev_blank || indented || prev_indented {
            if !prev_blank {
                out.push('\n');
            }
            out.push_str(l);
        } else {
            out.push(' ');
            out.push_str(l);
        }
        prev_blank = l.is_empty();
        prev_indented = indented;
    }
    out
}

#[derive(Clone, Copy)]
pub(crate) enum Chomp {
    Strip,
    Clip,
    Keep,
}

pub(crate) struct BlockScalarHeader {
    pub(crate) folded: bool,
    pub(crate) chomp: Chomp,
}

impl BlockScalarHeader {
    pub(crate) fn parse(token: &str) -> Option<Self> {
        let mut chars = token.chars();
        let folded = match chars.next()? {
            '|' => false,
            '>' => true,
            _ => return None,
        };
        let chomp = match chars.next() {
            None => Chomp::Clip,
            Some('-') => Chomp::Strip,
            Some('+') => Chomp::Keep,
            Some(_) => return None,
        };
        if chars.next().is_some() {
            return None;
        }
        Some(BlockScalarHeader { folded, chomp })
    }
}

/// Splits a mapping line into key and the remainder after `: `.
/// Returns `None` if the line is not a mapping entry.
pub(crate) fn split_key(content: &str) -> Option<(&str, &str)> {
    let bytes = content.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '\\' if in_double => {
                i += 2;
                continue;
            }
            '[' | '{' if !in_single && !in_double => depth += 1,
            ']' | '}' if !in_single && !in_double => depth -= 1,
            ':' if !in_single && !in_double && depth == 0 => {
                let next = bytes.get(i + 1).map(|b| *b as char);
                if next.is_none() || next == Some(' ') {
                    let key = content[..i].trim();
                    if key.is_empty() {
                        return None;
                    }
                    let rest = if i + 1 < content.len() {
                        &content[i + 1..]
                    } else {
                        ""
                    };
                    return Some((key, rest));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Unquotes a mapping key: quoted keys are unescaped, bare keys pass
/// through. Shared between the legacy and arena paths.
pub(crate) fn unquote_key_text(key: &str, line: usize) -> Result<String, ParseYamlError> {
    if key.starts_with('"') && key.ends_with('"') && key.len() >= 2 {
        unescape_double_quoted(key, line)
    } else if key.starts_with('\'') && key.ends_with('\'') && key.len() >= 2 {
        unescape_single_quoted(key, line)
    } else {
        Ok(key.to_owned())
    }
}

/// Parses an inline scalar or flow collection token.
fn parse_scalar_token(
    token: &str,
    line: usize,
    anchors: &mut HashMap<String, Node>,
) -> Result<Yaml, ParseYamlError> {
    let token = token.trim();
    // Anchor definition: `&name value`
    if let Some(rest) = token.strip_prefix('&') {
        let (name, rest) = rest
            .split_once(char::is_whitespace)
            .map(|(n, r)| (n, r.trim()))
            .unwrap_or((rest, ""));
        let value = if rest.is_empty() {
            Yaml::Null
        } else {
            parse_scalar_token(rest, line, anchors)?
        };
        anchors.insert(name.to_owned(), Node::scalar(value.clone(), None, line));
        return Ok(value);
    }
    // Alias: `*name`
    if let Some(name) = token.strip_prefix('*') {
        return anchors
            .get(name.trim())
            .map(Node::to_value)
            .ok_or_else(|| ParseYamlError::new(line, format!("unknown alias *{name}")));
    }
    // Tag: `!!str 5` — strip and reparse.
    if token.starts_with("!!") {
        if let Some((tag, rest)) = token.split_once(char::is_whitespace) {
            let v = parse_scalar_token(rest.trim(), line, anchors)?;
            return Ok(coerce_tag(tag, v));
        }
        return Ok(Yaml::Null);
    }
    if token.starts_with('[') {
        let (value, used) = parse_flow(token, line)?;
        if used != token.len() {
            return Err(ParseYamlError::new(
                line,
                "trailing characters after flow sequence",
            ));
        }
        return Ok(value);
    }
    if token.starts_with('{') {
        let (value, used) = parse_flow(token, line)?;
        if used != token.len() {
            return Err(ParseYamlError::new(
                line,
                "trailing characters after flow mapping",
            ));
        }
        return Ok(value);
    }
    if token.starts_with('"') {
        return parse_double_quoted(token, line);
    }
    if token.starts_with('\'') {
        return parse_single_quoted(token, line);
    }
    Ok(plain_scalar(token))
}

pub(crate) fn coerce_tag(tag: &str, v: Yaml) -> Yaml {
    match tag {
        "!!str" => Yaml::Str(v.render_scalar()),
        "!!int" => v.render_scalar().parse::<i64>().map(Yaml::Int).unwrap_or(v),
        "!!float" => v
            .render_scalar()
            .parse::<f64>()
            .map(Yaml::Float)
            .unwrap_or(v),
        "!!bool" => match v.render_scalar().as_str() {
            "true" | "True" => Yaml::Bool(true),
            "false" | "False" => Yaml::Bool(false),
            _ => v,
        },
        _ => v,
    }
}

/// The type a plain scalar resolves to, with `Str` left unallocated so
/// the arena path can intern the source slice directly.
pub(crate) enum PlainKind {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str,
}

/// Classifies a plain (unquoted) scalar per YAML 1.2 core schema
/// conventions without allocating. Single source of truth for both the
/// legacy and arena paths.
pub(crate) fn plain_scalar_kind(token: &str) -> PlainKind {
    match token {
        "" | "~" | "null" | "Null" | "NULL" => return PlainKind::Null,
        "true" | "True" | "TRUE" => return PlainKind::Bool(true),
        "false" | "False" | "FALSE" => return PlainKind::Bool(false),
        ".inf" | "+.inf" | ".Inf" => return PlainKind::Float(f64::INFINITY),
        "-.inf" | "-.Inf" => return PlainKind::Float(f64::NEG_INFINITY),
        ".nan" | ".NaN" => return PlainKind::Float(f64::NAN),
        _ => {}
    }
    if let Some(hex) = token.strip_prefix("0x") {
        if let Ok(i) = i64::from_str_radix(hex, 16) {
            return PlainKind::Int(i);
        }
    }
    if let Some(oct) = token.strip_prefix("0o") {
        if let Ok(i) = i64::from_str_radix(oct, 8) {
            return PlainKind::Int(i);
        }
    }
    if looks_like_int(token) {
        if let Ok(i) = token.parse::<i64>() {
            return PlainKind::Int(i);
        }
    }
    if looks_like_float(token) {
        if let Ok(f) = token.parse::<f64>() {
            return PlainKind::Float(f);
        }
    }
    PlainKind::Str
}

/// Types a plain (unquoted) scalar per YAML 1.2 core schema conventions.
pub fn plain_scalar(token: &str) -> Yaml {
    match plain_scalar_kind(token) {
        PlainKind::Null => Yaml::Null,
        PlainKind::Bool(b) => Yaml::Bool(b),
        PlainKind::Int(i) => Yaml::Int(i),
        PlainKind::Float(f) => Yaml::Float(f),
        PlainKind::Str => Yaml::Str(token.to_owned()),
    }
}

fn looks_like_int(token: &str) -> bool {
    let t = token.strip_prefix(['+', '-']).unwrap_or(token);
    !t.is_empty() && t.bytes().all(|b| b.is_ascii_digit())
}

fn looks_like_float(token: &str) -> bool {
    let t = token.strip_prefix(['+', '-']).unwrap_or(token);
    if t.is_empty() {
        return false;
    }
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut seen_exp = false;
    let bytes = t.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => seen_digit = true,
            b'.' if !seen_dot && !seen_exp => seen_dot = true,
            b'e' | b'E' if seen_digit && !seen_exp => {
                seen_exp = true;
                if matches!(bytes.get(i + 1), Some(b'+') | Some(b'-')) {
                    i += 1;
                }
            }
            _ => return false,
        }
        i += 1;
    }
    seen_digit && (seen_dot || seen_exp)
}

fn parse_double_quoted(token: &str, line: usize) -> Result<Yaml, ParseYamlError> {
    unescape_double_quoted(token, line).map(Yaml::Str)
}

/// Unescapes a `"..."` token (quotes included) into its text. Shared
/// between the legacy and arena paths.
pub(crate) fn unescape_double_quoted(token: &str, line: usize) -> Result<String, ParseYamlError> {
    let inner = token
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| ParseYamlError::new(line, "unterminated double-quoted string"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let cp = u32::from_str_radix(&hex, 16)
                    .map_err(|_| ParseYamlError::new(line, "bad \\u escape"))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| ParseYamlError::new(line, "bad \\u codepoint"))?,
                );
            }
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => return Err(ParseYamlError::new(line, "dangling escape")),
        }
    }
    Ok(out)
}

fn parse_single_quoted(token: &str, line: usize) -> Result<Yaml, ParseYamlError> {
    unescape_single_quoted(token, line).map(Yaml::Str)
}

/// Unescapes a `'...'` token (quotes included) into its text. Shared
/// between the legacy and arena paths.
pub(crate) fn unescape_single_quoted(token: &str, line: usize) -> Result<String, ParseYamlError> {
    let inner = token
        .strip_prefix('\'')
        .and_then(|t| t.strip_suffix('\''))
        .ok_or_else(|| ParseYamlError::new(line, "unterminated single-quoted string"))?;
    Ok(inner.replace("''", "'"))
}

/// Parses a flow collection starting at byte 0 of `s`; returns the value and
/// how many bytes were consumed.
fn parse_flow(s: &str, line: usize) -> Result<(Yaml, usize), ParseYamlError> {
    let bytes = s.as_bytes();
    match bytes.first() {
        Some(b'[') => {
            let mut items = Vec::new();
            let mut i = 1;
            loop {
                i = skip_ws(s, i);
                if i >= s.len() {
                    return Err(ParseYamlError::new(line, "unterminated flow sequence"));
                }
                if bytes[i] == b']' {
                    return Ok((Yaml::Seq(items), i + 1));
                }
                let (v, used) = parse_flow_value(&s[i..], line)?;
                items.push(v);
                i = skip_ws(s, i + used);
                match bytes.get(i) {
                    Some(b',') => i += 1,
                    Some(b']') => return Ok((Yaml::Seq(items), i + 1)),
                    _ => {
                        return Err(ParseYamlError::new(
                            line,
                            "expected , or ] in flow sequence",
                        ))
                    }
                }
            }
        }
        Some(b'{') => {
            let mut entries = Vec::new();
            let mut i = 1;
            loop {
                i = skip_ws(s, i);
                if i >= s.len() {
                    return Err(ParseYamlError::new(line, "unterminated flow mapping"));
                }
                if bytes[i] == b'}' {
                    return Ok((Yaml::Map(entries), i + 1));
                }
                let colon = find_flow_colon(&s[i..]).ok_or_else(|| {
                    ParseYamlError::new(line, "expected key: value in flow mapping")
                })?;
                let key = unquote_key_text(s[i..i + colon].trim(), line)?;
                i = skip_ws(s, i + colon + 1);
                let (v, used) = if matches!(bytes.get(i), Some(b',') | Some(b'}')) {
                    (Yaml::Null, 0)
                } else {
                    parse_flow_value(&s[i..], line)?
                };
                entries.push((key, v));
                i = skip_ws(s, i + used);
                match bytes.get(i) {
                    Some(b',') => i += 1,
                    Some(b'}') => return Ok((Yaml::Map(entries), i + 1)),
                    _ => return Err(ParseYamlError::new(line, "expected , or } in flow mapping")),
                }
            }
        }
        _ => Err(ParseYamlError::new(line, "not a flow collection")),
    }
}

fn skip_ws(s: &str, mut i: usize) -> usize {
    let bytes = s.as_bytes();
    while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t') {
        i += 1;
    }
    i
}

/// Finds the `:` separating key from value inside a flow mapping entry.
pub(crate) fn find_flow_colon(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            // `\"` inside a double-quoted key must not toggle the quote
            // state (JSON keys arrive here via the flow-mapping path).
            b'\\' if in_double => i += 1,
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b':' if !in_single && !in_double => return Some(i),
            b',' | b'}' if !in_single && !in_double => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses one value inside a flow collection; returns bytes consumed.
fn parse_flow_value(s: &str, line: usize) -> Result<(Yaml, usize), ParseYamlError> {
    let bytes = s.as_bytes();
    match bytes.first() {
        Some(b'[') | Some(b'{') => parse_flow(s, line),
        Some(b'"') => {
            let end = find_quote_end(s, '"', line)?;
            Ok((parse_double_quoted(&s[..=end], line)?, end + 1))
        }
        Some(b'\'') => {
            let end = find_quote_end(s, '\'', line)?;
            Ok((parse_single_quoted(&s[..=end], line)?, end + 1))
        }
        _ => {
            // Plain scalar: up to , ] } at depth 0.
            let mut i = 0;
            while i < bytes.len() && !matches!(bytes[i], b',' | b']' | b'}') {
                i += 1;
            }
            Ok((plain_scalar(s[..i].trim()), i))
        }
    }
}

pub(crate) fn find_quote_end(s: &str, quote: char, line: usize) -> Result<usize, ParseYamlError> {
    let bytes = s.as_bytes();
    let q = quote as u8;
    let mut i = 1;
    while i < bytes.len() {
        if bytes[i] == b'\\' && quote == '"' {
            i += 2;
            continue;
        }
        if bytes[i] == q {
            if quote == '\'' && bytes.get(i + 1) == Some(&q) {
                i += 2;
                continue;
            }
            return Ok(i);
        }
        i += 1;
    }
    Err(ParseYamlError::new(line, "unterminated quoted string"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ymap, yseq};

    fn v(src: &str) -> Yaml {
        parse_one(src).expect("parse").to_value()
    }

    #[test]
    fn parses_simple_mapping() {
        let doc = v("apiVersion: v1\nkind: Pod\n");
        assert_eq!(doc.get("apiVersion").and_then(Yaml::as_str), Some("v1"));
        assert_eq!(doc.get("kind").and_then(Yaml::as_str), Some("Pod"));
    }

    #[test]
    fn parses_nested_blocks() {
        let doc = v("metadata:\n  name: x\n  labels:\n    app: nginx\n");
        assert_eq!(
            doc.get_path(&["metadata", "labels", "app"])
                .and_then(Yaml::as_str),
            Some("nginx")
        );
    }

    #[test]
    fn parses_block_sequence_of_maps() {
        let doc = v("containers:\n- name: a\n  image: nginx\n- name: b\n");
        let containers = doc.get("containers").unwrap();
        assert_eq!(containers.seq_len(), Some(2));
        assert_eq!(
            containers
                .idx(0)
                .unwrap()
                .get("image")
                .and_then(Yaml::as_str),
            Some("nginx")
        );
        assert_eq!(
            containers
                .idx(1)
                .unwrap()
                .get("name")
                .and_then(Yaml::as_str),
            Some("b")
        );
    }

    #[test]
    fn sequence_at_same_indent_as_key() {
        // Kubernetes manifests commonly write the list at the key's indent.
        let doc = v("subjects:\n- kind: User\n  name: dave\nroleRef:\n  kind: ClusterRole\n");
        assert_eq!(doc.get("subjects").unwrap().seq_len(), Some(1));
        assert_eq!(
            doc.get_path(&["roleRef", "kind"]).and_then(Yaml::as_str),
            Some("ClusterRole")
        );
    }

    #[test]
    fn scalar_typing() {
        let doc = v("a: 80\nb: \"5000\"\nc: true\nd: null\ne: 1.5\nf: 100m\n");
        assert_eq!(doc.get("a"), Some(&Yaml::Int(80)));
        assert_eq!(doc.get("b"), Some(&Yaml::Str("5000".into())));
        assert_eq!(doc.get("c"), Some(&Yaml::Bool(true)));
        assert_eq!(doc.get("d"), Some(&Yaml::Null));
        assert_eq!(doc.get("e"), Some(&Yaml::Float(1.5)));
        assert_eq!(doc.get("f"), Some(&Yaml::Str("100m".into())));
    }

    #[test]
    fn flow_collections() {
        let doc =
            v("args: [run, --port, 80]\nsel: {app: nginx, tier: web}\nnest: [[1, 2], {k: [3]}]\n");
        assert_eq!(doc.get("args").unwrap(), &yseq!["run", "--port", 80i64]);
        assert_eq!(
            doc.get("sel").unwrap(),
            &ymap! {"app" => "nginx", "tier" => "web"}
        );
        assert_eq!(
            doc.get("nest").unwrap().idx(1).unwrap().get("k").unwrap(),
            &yseq![3i64]
        );
    }

    #[test]
    fn comments_are_captured() {
        let node = parse_one("metadata:\n  name: web # *\n  ns: default\n").unwrap();
        let NodeKind::Map(entries) = &node.kind else {
            panic!()
        };
        let NodeKind::Map(meta) = &entries[0].1.kind else {
            panic!()
        };
        assert_eq!(meta[0].1.comment.as_deref(), Some("*"));
        assert_eq!(meta[1].1.comment, None);
    }

    #[test]
    fn hash_inside_quotes_is_not_comment() {
        let doc = v("anno: \"a # b\"\nurl: http://x/#frag\n");
        assert_eq!(doc.get("anno").and_then(Yaml::as_str), Some("a # b"));
        // `#` not preceded by space is content.
        assert_eq!(
            doc.get("url").and_then(Yaml::as_str),
            Some("http://x/#frag")
        );
    }

    #[test]
    fn literal_block_scalar() {
        let doc = v("script: |\n  line1\n  line2\nnext: 1\n");
        assert_eq!(
            doc.get("script").and_then(Yaml::as_str),
            Some("line1\nline2\n")
        );
        assert_eq!(doc.get("next"), Some(&Yaml::Int(1)));
    }

    #[test]
    fn literal_block_scalar_strip_chomp() {
        let doc = v("s: |-\n  a\n  b\n");
        assert_eq!(doc.get("s").and_then(Yaml::as_str), Some("a\nb"));
    }

    #[test]
    fn folded_block_scalar() {
        let doc = v("s: >-\n  hello\n  world\n\n  next para\n");
        assert_eq!(
            doc.get("s").and_then(Yaml::as_str),
            Some("hello world\nnext para")
        );
    }

    #[test]
    fn block_scalar_keeps_hash() {
        let doc = v("cmd: |\n  echo hi # not a comment\n");
        assert_eq!(
            doc.get("cmd").and_then(Yaml::as_str),
            Some("echo hi # not a comment\n")
        );
    }

    #[test]
    fn multi_document_stream() {
        let docs = parse("---\na: 1\n---\nb: 2\n...\n").unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[1].to_value().get("b"), Some(&Yaml::Int(2)));
    }

    #[test]
    fn quoted_keys_and_url_keys() {
        let doc = v("\"a: b\": 1\nnginx.ingress.kubernetes.io/rewrite-target: /\n");
        assert_eq!(doc.get("a: b"), Some(&Yaml::Int(1)));
        assert_eq!(
            doc.get("nginx.ingress.kubernetes.io/rewrite-target")
                .and_then(Yaml::as_str),
            Some("/")
        );
    }

    #[test]
    fn anchors_and_aliases() {
        let doc = v("base: &img nginx:latest\ncopy: *img\n");
        assert_eq!(doc.get("copy").and_then(Yaml::as_str), Some("nginx:latest"));
    }

    #[test]
    fn unknown_alias_is_error() {
        assert!(parse_one("a: *nope\n").is_err());
    }

    #[test]
    fn tab_indentation_is_error() {
        assert!(parse("a:\n\tb: 1\n").is_err());
    }

    #[test]
    fn unterminated_flow_is_error() {
        assert!(parse_one("a: [1, 2\n").is_err());
    }

    #[test]
    fn bad_dedent_is_error() {
        assert!(parse_one("a:\n    b: 1\n  c: 2\n").is_err());
    }

    #[test]
    fn empty_value_is_null() {
        let doc = v("a:\nb: 1\n");
        assert_eq!(doc.get("a"), Some(&Yaml::Null));
    }

    #[test]
    fn dash_only_item_with_nested_map() {
        let doc = v("items:\n-\n  name: x\n- name: y\n");
        assert_eq!(doc.get("items").unwrap().seq_len(), Some(2));
        assert_eq!(
            doc.get("items")
                .unwrap()
                .idx(0)
                .unwrap()
                .get("name")
                .and_then(Yaml::as_str),
            Some("x")
        );
    }

    #[test]
    fn nested_sequence_in_sequence() {
        let doc = v("m:\n- - 1\n  - 2\n- - 3\n");
        let m = doc.get("m").unwrap();
        assert_eq!(m.idx(0).unwrap(), &yseq![1i64, 2i64]);
        assert_eq!(m.idx(1).unwrap(), &yseq![3i64]);
    }

    #[test]
    fn single_quote_escapes() {
        let doc = v("s: 'it''s'\n");
        assert_eq!(doc.get("s").and_then(Yaml::as_str), Some("it's"));
    }

    #[test]
    fn double_quote_escapes() {
        let doc = v("s: \"a\\nb\\u0041\"\n");
        assert_eq!(doc.get("s").and_then(Yaml::as_str), Some("a\nbA"));
    }

    #[test]
    fn inline_document_after_separator() {
        let docs = parse("--- 42\n").unwrap();
        assert_eq!(docs[0].to_value(), Yaml::Int(42));
    }

    #[test]
    fn env_var_listing_like_paper_example() {
        let src = "spec:\n  containers:\n  - env:\n    - name: MYSQL_USER\n      value: mysql\n    image: \"mysql:latest\"\n    name: mysql\n    ports:\n    - containerPort: 3306\n";
        let doc = v(src);
        let c0 = doc
            .get_path(&["spec", "containers"])
            .unwrap()
            .idx(0)
            .unwrap();
        assert_eq!(c0.get("image").and_then(Yaml::as_str), Some("mysql:latest"));
        assert_eq!(
            c0.get("env")
                .unwrap()
                .idx(0)
                .unwrap()
                .get("name")
                .and_then(Yaml::as_str),
            Some("MYSQL_USER")
        );
        assert_eq!(
            c0.get("ports")
                .unwrap()
                .idx(0)
                .unwrap()
                .get("containerPort"),
            Some(&Yaml::Int(3306))
        );
    }
}
