//! Compact JSON rendering of [`Yaml`] values, used by the `kubectl -o json`
//! output path and by JSONPath rendering of non-scalar results.

use crate::value::Yaml;

/// Renders a value as compact JSON.
///
/// # Examples
///
/// ```
/// use yamlkit::ymap;
/// let v = ymap! { "a" => 1i64, "b" => "x" };
/// assert_eq!(yamlkit::json::to_json(&v), r#"{"a":1,"b":"x"}"#);
/// ```
pub fn to_json(value: &Yaml) -> String {
    let mut out = String::new();
    write_json(value, &mut out);
    out
}

/// Renders a value as pretty-printed JSON with two-space indentation.
pub fn to_json_pretty(value: &Yaml) -> String {
    let mut out = String::new();
    write_json_pretty(value, 0, &mut out);
    out.push('\n');
    out
}

fn write_json(value: &Yaml, out: &mut String) {
    match value {
        Yaml::Null => out.push_str("null"),
        Yaml::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Yaml::Int(i) => out.push_str(&i.to_string()),
        Yaml::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null"); // JSON has no inf/nan
            }
        }
        Yaml::Str(s) => write_json_string(s, out),
        Yaml::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Yaml::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_json(v, out);
            }
            out.push('}');
        }
    }
}

fn write_json_pretty(value: &Yaml, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match value {
        Yaml::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_json_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Yaml::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_json_string(k, out);
                out.push_str(": ");
                write_json_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_json(other, out),
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ymap, yseq, Yaml};

    #[test]
    fn compact_json() {
        let v = ymap! { "n" => Yaml::Null, "s" => yseq![1i64, true], "q" => "a\"b" };
        assert_eq!(to_json(&v), r#"{"n":null,"s":[1,true],"q":"a\"b"}"#);
    }

    #[test]
    fn pretty_json_nests() {
        let v = ymap! { "a" => ymap!{ "b" => 1i64 } };
        assert_eq!(to_json_pretty(&v), "{\n  \"a\": {\n    \"b\": 1\n  }\n}\n");
    }

    #[test]
    fn empty_collections() {
        assert_eq!(to_json(&Yaml::Seq(vec![])), "[]");
        assert_eq!(to_json(&Yaml::Map(vec![])), "{}");
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(to_json(&Yaml::Str("\u{1}".into())), "\"\\u0001\"");
    }
}
