//! Compact JSON rendering of [`Yaml`] values, used by the `kubectl -o json`
//! output path and by JSONPath rendering of non-scalar results.

use crate::value::Yaml;

/// Renders a value as compact JSON.
///
/// # Examples
///
/// ```
/// use yamlkit::ymap;
/// let v = ymap! { "a" => 1i64, "b" => "x" };
/// assert_eq!(yamlkit::json::to_json(&v), r#"{"a":1,"b":"x"}"#);
/// ```
pub fn to_json(value: &Yaml) -> String {
    let mut out = String::new();
    write_json(value, &mut out);
    out
}

/// Renders a value as compact JSON **appended to an existing buffer** —
/// the allocation-free sibling of [`to_json`] for hot paths (the
/// `ceserve` batch stream) that assemble wire lines into one reusable
/// `String` instead of collecting intermediates.
///
/// # Examples
///
/// ```
/// use yamlkit::ymap;
/// let mut line = String::from("result: ");
/// yamlkit::json::write_json(&ymap! { "ok" => true }, &mut line);
/// assert_eq!(line, r#"result: {"ok":true}"#);
/// ```
pub fn write_json(value: &Yaml, out: &mut String) {
    write_json_inner(value, out);
}

/// Renders a value as pretty-printed JSON with two-space indentation.
pub fn to_json_pretty(value: &Yaml) -> String {
    let mut out = String::new();
    write_json_pretty(value, 0, &mut out);
    out.push('\n');
    out
}

fn write_json_inner(value: &Yaml, out: &mut String) {
    match value {
        Yaml::Null => out.push_str("null"),
        Yaml::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Yaml::Int(i) => out.push_str(&i.to_string()),
        Yaml::Float(f) => {
            if f.is_finite() {
                // `format!("{f}")` renders 1.0_f64 as "1", which a JSON (or
                // YAML) reader re-types as an integer. Always keep a decimal
                // point or exponent so floats stay floats across the wire.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no inf/nan
            }
        }
        Yaml::Str(s) => write_json_string(s, out),
        Yaml::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_inner(item, out);
            }
            out.push(']');
        }
        Yaml::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_json_inner(v, out);
            }
            out.push('}');
        }
    }
}

fn write_json_pretty(value: &Yaml, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match value {
        Yaml::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_json_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Yaml::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_json_string(k, out);
                out.push_str(": ");
                write_json_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_json_inner(other, out),
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ymap, yseq, Yaml};

    #[test]
    fn compact_json() {
        let v = ymap! { "n" => Yaml::Null, "s" => yseq![1i64, true], "q" => "a\"b" };
        assert_eq!(to_json(&v), r#"{"n":null,"s":[1,true],"q":"a\"b"}"#);
    }

    #[test]
    fn pretty_json_nests() {
        let v = ymap! { "a" => ymap!{ "b" => 1i64 } };
        assert_eq!(to_json_pretty(&v), "{\n  \"a\": {\n    \"b\": 1\n  }\n}\n");
    }

    #[test]
    fn empty_collections() {
        assert_eq!(to_json(&Yaml::Seq(vec![])), "[]");
        assert_eq!(to_json(&Yaml::Map(vec![])), "{}");
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(to_json(&Yaml::Str("\u{1}".into())), "\"\\u0001\"");
    }

    #[test]
    fn floats_keep_their_type_on_the_wire() {
        assert_eq!(to_json(&Yaml::Float(1.0)), "1.0");
        assert_eq!(to_json(&Yaml::Float(-3.0)), "-3.0");
        assert_eq!(to_json(&Yaml::Float(0.25)), "0.25");
        // `{}` never uses exponent notation; the expansion still re-types
        // as the same float.
        assert_eq!(
            crate::parse_one(&to_json(&Yaml::Float(1e300)))
                .unwrap()
                .to_value(),
            Yaml::Float(1e300)
        );
        assert_eq!(to_json(&Yaml::Float(f64::NAN)), "null");
        // The emitted text re-parses as a float, not an int.
        assert_eq!(
            crate::parse_one(&to_json(&Yaml::Float(2.0)))
                .unwrap()
                .to_value(),
            Yaml::Float(2.0)
        );
    }
}
