//! A JSONPath subset covering what `kubectl -o jsonpath=...` queries use in
//! CloudEval-YAML unit tests.
//!
//! Supported inside a `{...}` template:
//!
//! * `.field` and `['field']` child access,
//! * `[3]` sequence index, `[*]` sequence/mapping splat,
//! * `..field` recursive descent,
//! * `[?(@.field=="value")]` equality filters,
//! * plain text between `{...}` groups (kubectl template behaviour).

use std::fmt;

use crate::value::Yaml;

/// Error for malformed JSONPath expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError(String);

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid jsonpath: {}", self.0)
    }
}

impl std::error::Error for ParsePathError {}

/// One step of a compiled path.
#[derive(Debug, Clone, PartialEq)]
enum Step {
    Child(String),
    Index(i64),
    Splat,
    Recursive(String),
    Filter { field: Vec<String>, equals: Yaml },
}

/// A compiled JSONPath expression.
///
/// # Examples
///
/// ```
/// use yamlkit::path::JsonPath;
/// let doc = yamlkit::parse_one("items:\n- metadata:\n    name: a\n- metadata:\n    name: b\n")
///     .unwrap()
///     .to_value();
/// let p = JsonPath::compile(".items[*].metadata.name").unwrap();
/// assert_eq!(p.render(&doc), "a b");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JsonPath {
    steps: Vec<Step>,
}

impl JsonPath {
    /// Compiles an expression. Leading `$`, surrounding `{}` and a leading
    /// `.` are all optional, matching how kubectl users write them.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePathError`] on unbalanced brackets or bad filters.
    pub fn compile(expr: &str) -> Result<JsonPath, ParsePathError> {
        let expr = expr.trim();
        let expr = expr
            .strip_prefix('{')
            .and_then(|e| e.strip_suffix('}'))
            .unwrap_or(expr);
        let expr = expr.strip_prefix('$').unwrap_or(expr);
        let mut steps = Vec::new();
        let bytes = expr.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'.' => {
                    if bytes.get(i + 1) == Some(&b'.') {
                        // Recursive descent: `..name`
                        let start = i + 2;
                        let end = segment_end(expr, start);
                        if start == end {
                            return Err(ParsePathError("empty recursive segment".into()));
                        }
                        steps.push(Step::Recursive(expr[start..end].to_owned()));
                        i = end;
                    } else {
                        let start = i + 1;
                        let end = segment_end(expr, start);
                        if start < end {
                            steps.push(Step::Child(expr[start..end].to_owned()));
                        }
                        i = end;
                    }
                }
                b'[' => {
                    let close = find_close(expr, i)?;
                    let inner = expr[i + 1..close].trim();
                    steps.push(parse_bracket(inner)?);
                    i = close + 1;
                }
                _ => {
                    // Bare leading segment, e.g. `items[0]`.
                    let end = segment_end(expr, i);
                    if i == end {
                        return Err(ParsePathError(format!("unexpected character at {i}")));
                    }
                    steps.push(Step::Child(expr[i..end].to_owned()));
                    i = end;
                }
            }
        }
        Ok(JsonPath { steps })
    }

    /// Evaluates the path, returning every matching node.
    pub fn select<'a>(&self, root: &'a Yaml) -> Vec<&'a Yaml> {
        let mut current: Vec<&Yaml> = vec![root];
        for step in &self.steps {
            let mut next = Vec::new();
            for node in current {
                apply(step, node, &mut next);
            }
            current = next;
        }
        current
    }

    /// Renders matches the way kubectl does: scalar values joined by a
    /// single space, collections as compact JSON.
    pub fn render(&self, root: &Yaml) -> String {
        self.select(root)
            .iter()
            .map(|v| v.render_scalar())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn apply<'a>(step: &Step, node: &'a Yaml, out: &mut Vec<&'a Yaml>) {
    match step {
        Step::Child(name) => {
            if let Some(v) = node.get(name) {
                out.push(v);
            }
        }
        Step::Index(i) => {
            if let Yaml::Seq(items) = node {
                let idx = if *i < 0 { items.len() as i64 + i } else { *i };
                if idx >= 0 {
                    if let Some(v) = items.get(idx as usize) {
                        out.push(v);
                    }
                }
            }
        }
        Step::Splat => match node {
            Yaml::Seq(items) => out.extend(items.iter()),
            Yaml::Map(entries) => out.extend(entries.iter().map(|(_, v)| v)),
            _ => {}
        },
        Step::Recursive(name) => collect_recursive(node, name, out),
        Step::Filter { field, equals } => {
            if let Yaml::Seq(items) = node {
                for item in items {
                    let mut cur = Some(item);
                    for f in field {
                        cur = cur.and_then(|c| c.get(f));
                    }
                    if cur.is_some_and(|v| v == equals) {
                        out.push(item);
                    }
                }
            }
        }
    }
}

fn collect_recursive<'a>(node: &'a Yaml, name: &str, out: &mut Vec<&'a Yaml>) {
    match node {
        Yaml::Map(entries) => {
            for (k, v) in entries {
                if k == name {
                    out.push(v);
                }
                collect_recursive(v, name, out);
            }
        }
        Yaml::Seq(items) => {
            for item in items {
                collect_recursive(item, name, out);
            }
        }
        _ => {}
    }
}

fn segment_end(expr: &str, start: usize) -> usize {
    expr[start..]
        .find(['.', '['])
        .map(|off| start + off)
        .unwrap_or(expr.len())
}

fn find_close(expr: &str, open: usize) -> Result<usize, ParsePathError> {
    let bytes = expr.as_bytes();
    let mut depth = 0;
    let mut in_str: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match (in_str, b) {
            (Some(q), _) if b == q => in_str = None,
            (Some(_), _) => {}
            (None, b'\'') | (None, b'"') => in_str = Some(b),
            (None, b'[') => depth += 1,
            (None, b']') => {
                depth -= 1;
                if depth == 0 {
                    return Ok(i);
                }
            }
            _ => {}
        }
    }
    Err(ParsePathError("unbalanced bracket".into()))
}

fn parse_bracket(inner: &str) -> Result<Step, ParsePathError> {
    if inner == "*" {
        return Ok(Step::Splat);
    }
    if let Ok(i) = inner.parse::<i64>() {
        return Ok(Step::Index(i));
    }
    if (inner.starts_with('\'') && inner.ends_with('\'') && inner.len() >= 2)
        || (inner.starts_with('"') && inner.ends_with('"') && inner.len() >= 2)
    {
        return Ok(Step::Child(inner[1..inner.len() - 1].to_owned()));
    }
    if let Some(filter) = inner.strip_prefix("?(").and_then(|f| f.strip_suffix(')')) {
        let (lhs, rhs) = filter
            .split_once("==")
            .ok_or_else(|| ParsePathError(format!("unsupported filter: {inner}")))?;
        let lhs = lhs.trim();
        let field_path = lhs
            .strip_prefix("@.")
            .ok_or_else(|| ParsePathError(format!("filter must start with @. : {inner}")))?;
        let field: Vec<String> = field_path.split('.').map(str::to_owned).collect();
        let rhs = rhs.trim();
        let equals = if (rhs.starts_with('"') && rhs.ends_with('"'))
            || (rhs.starts_with('\'') && rhs.ends_with('\''))
        {
            Yaml::Str(rhs[1..rhs.len() - 1].to_owned())
        } else {
            crate::parser::plain_scalar(rhs)
        };
        return Ok(Step::Filter { field, equals });
    }
    Err(ParsePathError(format!(
        "unsupported bracket expression: [{inner}]"
    )))
}

/// Evaluates a full kubectl jsonpath *template*: literal text with one or
/// more `{expr}` groups substituted.
///
/// # Errors
///
/// Fails when any embedded expression is malformed.
pub fn render_template(template: &str, root: &Yaml) -> Result<String, ParsePathError> {
    let mut out = String::new();
    let mut rest = template;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        let close = rest[open..]
            .find('}')
            .map(|c| open + c)
            .ok_or_else(|| ParsePathError("unbalanced { in template".into()))?;
        let expr = &rest[open + 1..close];
        let quoted = expr.len() >= 2 && expr.starts_with('"') && expr.ends_with('"');
        let literal = if quoted {
            &expr[1..expr.len() - 1]
        } else {
            expr
        };
        match literal {
            "\\n" => out.push('\n'),
            "\\t" => out.push('\t'),
            _ if quoted => out.push_str(literal),
            _ => out.push_str(&JsonPath::compile(expr)?.render(root)),
        }
        rest = &rest[close + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_one;

    fn doc() -> Yaml {
        parse_one(
            "items:\n- metadata:\n    name: pod-a\n  spec:\n    containers:\n    - name: c1\n      env:\n      - name: A\n      - name: B\n- metadata:\n    name: pod-b\n  spec:\n    containers:\n    - name: c2\nstatus:\n  hostIP: 10.0.0.1\n",
        )
        .unwrap()
        .to_value()
    }

    #[test]
    fn simple_field_chain() {
        let p = JsonPath::compile("{.status.hostIP}").unwrap();
        assert_eq!(p.render(&doc()), "10.0.0.1");
    }

    #[test]
    fn index_and_field() {
        let p = JsonPath::compile(".items[0].metadata.name").unwrap();
        assert_eq!(p.render(&doc()), "pod-a");
    }

    #[test]
    fn negative_index() {
        let p = JsonPath::compile(".items[-1].metadata.name").unwrap();
        assert_eq!(p.render(&doc()), "pod-b");
    }

    #[test]
    fn splat_over_items() {
        let p = JsonPath::compile(".items[*].metadata.name").unwrap();
        assert_eq!(p.render(&doc()), "pod-a pod-b");
    }

    #[test]
    fn env_star_name_like_paper_unit_test() {
        let p = JsonPath::compile("{.items[0].spec.containers[0].env[*].name}").unwrap();
        assert_eq!(p.render(&doc()), "A B");
    }

    #[test]
    fn recursive_descent() {
        let p = JsonPath::compile("{.items..metadata.name}").unwrap();
        assert_eq!(p.render(&doc()), "pod-a pod-b");
    }

    #[test]
    fn filter_equality() {
        let p =
            JsonPath::compile("{.items[?(@.metadata.name==\"pod-b\")].spec.containers[0].name}")
                .unwrap();
        assert_eq!(p.render(&doc()), "c2");
    }

    #[test]
    fn quoted_child_access() {
        let d = parse_one("m:\n  \"app.kubernetes.io/name\": web\n")
            .unwrap()
            .to_value();
        let p = JsonPath::compile(".m['app.kubernetes.io/name']").unwrap();
        assert_eq!(p.render(&d), "web");
    }

    #[test]
    fn missing_path_renders_empty() {
        let p = JsonPath::compile(".nope.nothing").unwrap();
        assert_eq!(p.render(&doc()), "");
    }

    #[test]
    fn template_mixes_text_and_groups() {
        let s = render_template(
            "host={.status.hostIP} first={.items[0].metadata.name}",
            &doc(),
        )
        .unwrap();
        assert_eq!(s, "host=10.0.0.1 first=pod-a");
    }

    #[test]
    fn template_newline_escape() {
        let s = render_template("{.status.hostIP}{\"\\n\"}", &doc());
        // kubectl writes {"\n"}; we accept {\n} too.
        let s2 = render_template("{.status.hostIP}{\\n}", &doc()).unwrap();
        assert_eq!(s2, "10.0.0.1\n");
        drop(s);
    }

    #[test]
    fn compile_errors() {
        assert!(JsonPath::compile(".a[").is_err());
        assert!(JsonPath::compile("[?(@.x>1)]").is_err());
    }
}
