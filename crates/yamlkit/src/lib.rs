//! # yamlkit
//!
//! A self-contained YAML engine for the CloudEval-YAML reproduction: the
//! document model ([`Yaml`]), a parser for the cloud-native YAML dialect
//! ([`parse`] / [`parse_one`], with comments preserved on [`Node`]s), a
//! canonical emitter ([`emit`]), CloudEval reference match labels
//! ([`labels::MatchTree`]), compact/pretty JSON rendering ([`json`]), and
//! the JSONPath subset `kubectl -o jsonpath` queries need ([`path`]).
//!
//! The paper's benchmark pipeline leans on exactly these pieces: the
//! YAML-aware metrics load documents order-insensitively (§3.2), the
//! reference files carry `# *` / `# v in [...]` labels (§2.1), and unit
//! tests interrogate cluster state through JSONPath (§3.2, Appendix C).
//!
//! # Examples
//!
//! ```
//! use yamlkit::{labels::MatchTree, Yaml};
//!
//! let reference = "kind: Service\nmetadata:\n  name: web # *\nspec:\n  port: 80\n";
//! let candidate = "metadata:\n  name: anything\nkind: Service\nspec:\n  port: 80\n";
//!
//! let tree = MatchTree::parse(reference)?;
//! let cand = yamlkit::parse_one(candidate)?.to_value();
//! assert_eq!(tree.iou(&cand), 1.0);
//! # Ok::<(), yamlkit::ParseYamlError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod doc;
pub mod emitter;
pub mod intern;
pub mod json;
pub mod labels;
pub mod parser;
pub mod path;
mod value;

pub use arena::ArenaDoc;
pub use doc::PreparedDoc;
pub use emitter::{emit, emit_all};
pub use parser::{parse, parse_legacy, parse_one, Node, NodeKind, ParseYamlError};
pub use value::Yaml;

/// Canonicalizes YAML text: parse then emit. Returns `None` when the text
/// is not valid YAML. Useful for text-level metrics that should not be
/// sensitive to cosmetic formatting.
pub fn canonicalize(source: &str) -> Option<String> {
    let docs = parse(source).ok()?;
    if docs.is_empty() {
        return None;
    }
    let values: Vec<Yaml> = docs.iter().map(Node::to_value).collect();
    Some(emit_all(&values))
}

#[cfg(test)]
mod tests {
    #[test]
    fn canonicalize_normalizes_formatting() {
        let a = super::canonicalize("a:   1\nb:\n    c:   x\n").unwrap();
        let b = super::canonicalize("a: 1\nb:\n  c: x\n").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn canonicalize_rejects_invalid() {
        assert!(super::canonicalize("a: [1,\n").is_none());
    }
}
