//! The arena parse path's correctness gate: on *arbitrary* input — valid
//! manifests, labeled references, anchors, comments, and malformed text
//! alike — the arena parser must be indistinguishable from the legacy
//! parser: identical node trees (values, comments, line numbers) on
//! success, identical error line and message on failure. The generator
//! deliberately produces a mix of well-formed and broken documents so
//! both halves of the contract are exercised in the same run.

use proptest::prelude::*;
use yamlkit::labels::MatchTree;
use yamlkit::{ArenaDoc, Node, PreparedDoc, Yaml};

/// Asserts legacy ≡ arena on one input, across every surface the ISSUE
/// names: values, comments, line numbers (all carried by `Node`'s
/// `PartialEq`), label match trees, and parse-error line/message.
fn assert_equivalent(src: &str) {
    let legacy = yamlkit::parse_legacy(src);
    let arena = yamlkit::parse(src);
    match (&legacy, &arena) {
        (Ok(l), Ok(a)) => {
            assert_eq!(l, a, "node trees diverge on {src:?}");
        }
        (Err(l), Err(a)) => {
            assert_eq!(l.line(), a.line(), "error line diverges on {src:?}");
            assert_eq!(
                l.message(),
                a.message(),
                "error message diverges on {src:?}"
            );
        }
        _ => panic!("parse outcome diverges on {src:?}: legacy {legacy:?} vs arena {arena:?}"),
    }
    // The ArenaDoc views must agree with the materialized trees.
    let doc = ArenaDoc::parse(src);
    match &legacy {
        Ok(nodes) => {
            assert!(doc.error().is_none());
            assert_eq!(&doc.materialize_nodes(), nodes);
            let values: Vec<Yaml> = nodes.iter().map(Node::to_value).collect();
            assert_eq!(doc.materialize_values(), values);
            let leaf_count: usize = values.iter().map(Yaml::leaf_count).sum();
            assert_eq!(doc.leaf_count(), leaf_count, "leaf count on {src:?}");
            // Label trees built off the arena equal trees built off nodes.
            let prepared = PreparedDoc::new(src);
            let want: Vec<MatchTree> = nodes.iter().map(MatchTree::from_node).collect();
            assert_eq!(prepared.match_trees(), want, "match trees on {src:?}");
            assert_eq!(prepared.nodes(), nodes.as_slice());
            assert_eq!(prepared.values(), values.as_slice());
        }
        Err(e) => {
            let got = doc.error().expect("arena records the error");
            assert_eq!((got.line(), got.message()), (e.line(), e.message()));
            assert_eq!(doc.doc_count(), 0);
        }
    }
}

/// One body line of generated pseudo-YAML: drawn from a vocabulary that
/// covers scalars, quoting, flow collections, block-scalar headers,
/// anchors/aliases/tags, comments and labels — plus malformed variants
/// (unterminated quotes/flows, tabs, stray content) so error paths get
/// equal coverage.
fn key_strat() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("apiVersion"),
        Just("kind"),
        Just("metadata"),
        Just("name"),
        Just("spec"),
        Just("image"),
        Just("ports"),
        Just("a"),
        Just("b-c"),
        Just("nginx.ingress.kubernetes.io/rewrite-target"),
        Just("\"quoted: key\""),
        Just("'single key'"),
    ]
}

fn value_strat() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("web".to_owned()),
        Just("80".to_owned()),
        Just("1.5".to_owned()),
        Just("true".to_owned()),
        Just("null".to_owned()),
        Just("~".to_owned()),
        Just("0x1F".to_owned()),
        Just("-.inf".to_owned()),
        Just("nginx:latest".to_owned()),
        Just("\"a # b\"".to_owned()),
        Just("'it''s'".to_owned()),
        Just("\"esc\\n\\u0041\"".to_owned()),
        Just("[1, 2, [3]]".to_owned()),
        Just("{app: web, tier: 2}".to_owned()),
        Just("[]".to_owned()),
        Just("{}".to_owned()),
        Just("&anc nginx".to_owned()),
        Just("*anc".to_owned()),
        Just("*missing".to_owned()),
        Just("!!str 80".to_owned()),
        Just("!!int 80".to_owned()),
        Just("|".to_owned()),
        Just("|-".to_owned()),
        Just(">".to_owned()),
        Just(">+".to_owned()),
        Just("http://x/#frag".to_owned()),
        // Malformed values — must produce identical diagnostics.
        Just("[1, 2".to_owned()),
        Just("[1 2]".to_owned()),
        Just("{a}".to_owned()),
        Just("{a: 1 b: 2}".to_owned()),
        Just("[1], x".to_owned()),
        Just("{a: 1} x".to_owned()),
        Just("\"unterminated".to_owned()),
        Just("'unterminated".to_owned()),
        Just("\"dangle\\\"".to_owned()),
        Just("\"bad\\uZZZZ\"".to_owned()),
        "[a-z0-9 ]{0,10}",
    ]
}

fn comment_strat() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("".to_owned()),
        Just(" # *".to_owned()),
        Just(" # v in ['20.04', '22.04']".to_owned()),
        Just(" # just a note".to_owned()),
        Just(" #".to_owned()),
    ]
}

fn arb_body() -> impl Strategy<Value = String> {
    let entry = || {
        (key_strat(), value_strat(), comment_strat()).prop_map(|(k, v, c)| format!("{k}: {v}{c}"))
    };
    let item = || (value_strat(), comment_strat()).prop_map(|(v, c)| format!("- {v}{c}"));
    let nested_key = (key_strat(), comment_strat()).prop_map(|(k, c)| format!("{k}:{c}"));
    let structural = prop_oneof![
        Just("-".to_owned()),
        Just("# full line comment".to_owned()),
        Just("---".to_owned()),
        Just("--- 42".to_owned()),
        Just("...".to_owned()),
        Just("%YAML 1.2".to_owned()),
        Just("just a bare scalar".to_owned()),
        Just("\ttabbed".to_owned()),
        Just(" \tmixed tab".to_owned()),
    ];
    // The vendored prop_oneof! has no weighted arms; repeating the
    // mapping-entry arm biases generation toward realistic documents.
    prop_oneof![
        entry(),
        entry(),
        entry(),
        nested_key,
        item(),
        item(),
        structural,
    ]
}

/// A whole document: lines at random (even) indents, newline-joined.
fn arb_doc() -> impl Strategy<Value = String> {
    prop::collection::vec(
        (
            prop_oneof![Just(0usize), Just(2), Just(4), Just(6)],
            arb_body(),
        ),
        0..16,
    )
    .prop_map(|lines| {
        let mut out = String::new();
        for (indent, body) in lines {
            out.push_str(&" ".repeat(indent));
            out.push_str(&body);
            out.push('\n');
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arena ≡ legacy on arbitrary generated documents, valid or not.
    #[test]
    fn arena_equals_legacy_on_generated_documents(src in arb_doc()) {
        assert_equivalent(&src);
    }

    /// Arena ≡ legacy on emitted well-formed value trees (guaranteed-valid
    /// inputs, so the success half of the contract is always exercised).
    #[test]
    fn arena_equals_legacy_on_emitted_values(v in arb_emit_yaml()) {
        assert_equivalent(&yamlkit::emit(&v));
    }
}

/// Value-tree strategy for the emitted-input property (kept small; the
/// emitter guarantees validity).
fn arb_emit_yaml() -> impl Strategy<Value = Yaml> {
    let leaf = prop_oneof![
        Just(Yaml::Null),
        any::<bool>().prop_map(Yaml::Bool),
        (-1_000_000i64..1_000_000).prop_map(Yaml::Int),
        (-1000.0f64..1000.0).prop_map(|f| Yaml::Float((f * 16.0).round() / 16.0)),
        "[a-zA-Z0-9_./:-]{0,12}".prop_map(Yaml::Str),
        Just(Yaml::Str("has # hash".to_owned())),
        Just(Yaml::Str("line1\nline2".to_owned())),
        Just(Yaml::Str("a: b".to_owned())),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Yaml::Seq),
            prop::collection::vec(("[a-zA-Z][a-zA-Z0-9_.-]{0,8}", inner), 0..4).prop_map(
                |entries| {
                    let mut seen = std::collections::HashSet::new();
                    Yaml::Map(
                        entries
                            .into_iter()
                            .filter(|(k, _)| seen.insert(k.clone()))
                            .collect(),
                    )
                }
            ),
        ]
    })
}

/// Every distinct diagnostic the parser can emit, pinned one by one:
/// the proptest above covers these probabilistically, this covers them
/// deterministically so a regression names the exact error that moved.
#[test]
fn error_diagnostics_pinned_case_by_case() {
    for src in [
        "a:\n\tb: 1\n",           // tab used for indentation
        "a: [1,\n",               // unterminated flow sequence
        "a: {x: 1,\n",            // unterminated flow mapping
        "a: {x}\n",               // expected key: value in flow mapping
        "a: [1], z\n",            // trailing characters after flow sequence
        "a: {x: 1} z\n",          // trailing characters after flow mapping
        "a: \"unterminated\n",    // unterminated double-quoted string
        "a: 'unterminated\n",     // unterminated single-quoted string
        "a: \"dangle\\\"\n",      // dangling escape
        "a: \"bad\\uZZZZ\"\n",    // bad \u escape
        "a: \"bad\\udfff\"\n",    // bad \u codepoint
        "a: [\"oops]\n",          // unterminated quoted string (flow)
        "a: *nope\n",             // unknown alias *nope
        "a: 1\nbare\n",           // unexpected content after document
        "a:\n    b: 1\n  c: 2\n", // bad indentation inside mapping
        "s:\n- 1\n   - 2\n",      // bad indentation inside sequence
        "a: 1\n---\nb: [\n",      // error in second document of a stream
    ] {
        assert_equivalent(src);
        // Each case must actually be an error, or the pin is vacuous.
        assert!(yamlkit::parse(src).is_err(), "expected error on {src:?}");
    }
}

/// Representative well-formed manifests, pinned deterministically.
#[test]
fn representative_manifests_are_equivalent() {
    for src in [
        "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: web # *\n  labels:\n    app: web\nspec:\n  replicas: 3\n  template:\n    spec:\n      containers:\n      - name: c\n        image: nginx # v in ['nginx', 'httpd']\n        ports: [80, 443]\n        env:\n        - {name: A, value: \"1\"}\n",
        "script: |\n  echo hi # kept\n  second\nfolded: >-\n  one\n  two\n\n  para\n",
        "---\na: 1\n---\nb: &x 2\nc: *x\n...\n%YAML 1.2\n",
        "--- 42\n",
        "defaults: &def\n  cpu: 1\nprod:\n  limits: *def\n",
        "empty:\nseq: []\nmap: {}\nnested:\n- - 1\n  - 2\n- - 3\n",
        "\"a: b\": 1\n'k': 2\n",
        // Plain flow scalars absorb spaces up to , ] } — not errors.
        "a: [1 2]\n",
        "a: {x: 1 y: 2}\n",
        "a: !!str 80\nb: !!int \"80\"\nc: !!bool True\n",
        "",
        "\n\n\n",
        "# only a comment\n",
    ] {
        assert_equivalent(src);
    }
}

/// The interner stress test the ISSUE asks for: 10k distinct keys then
/// 10k duplicates — dense assignment-ordered ids, id stability across
/// duplicate interning, no table growth or buffer growth on the
/// duplicate pass, and the 3/4 load-factor bound.
#[test]
fn interner_stress_ten_thousand_distinct_plus_duplicates() {
    use yamlkit::intern::{StrInterner, Sym};
    let mut interner = StrInterner::with_capacity(16);
    let syms: Vec<Sym> = (0..10_000)
        .map(|n| interner.intern(&format!("key-{n}")))
        .collect();
    assert_eq!(interner.len(), 10_000);
    // Ids are dense and assignment-ordered.
    for (n, sym) in syms.iter().enumerate() {
        assert_eq!(*sym, Sym(n as u32));
    }
    let capacity_before = interner.table_capacity();
    let buffer_before = interner.buffer_len();
    // 10k duplicates: same ids come back, nothing grows.
    for (n, sym) in syms.iter().enumerate() {
        assert_eq!(interner.intern(&format!("key-{n}")), *sym);
    }
    assert_eq!(interner.len(), 10_000);
    assert_eq!(interner.table_capacity(), capacity_before);
    assert_eq!(interner.buffer_len(), buffer_before);
    // Load factor stays at or under 3/4.
    assert!(interner.table_capacity() * 3 >= interner.len() * 4);
    // Every symbol still resolves to its exact text.
    for (n, sym) in syms.iter().enumerate() {
        assert_eq!(interner.resolve(*sym), format!("key-{n}"));
    }
}

/// The same stress shape driven through an actual parse: a document with
/// 10k distinct keys and one with a single value repeated 10k times.
#[test]
fn parser_interns_at_scale() {
    let mut distinct = String::new();
    for n in 0..10_000 {
        distinct.push_str(&format!("key-{n}: {n}\n"));
    }
    let doc = ArenaDoc::parse(distinct.as_str());
    assert!(doc.error().is_none());
    assert_eq!(doc.leaf_count(), 10_000);
    // 10k distinct keys; integer values don't intern.
    assert_eq!(doc.interned_strings(), 10_000);

    let mut repeated = String::from("items:\n");
    for _ in 0..10_000 {
        repeated.push_str("- name: web\n");
    }
    let doc = ArenaDoc::parse(repeated.as_str());
    assert!(doc.error().is_none());
    // "items", "name", "web": repetition costs nothing.
    assert_eq!(doc.interned_strings(), 3);
    assert_eq!(doc.leaf_count(), 10_000);
}
