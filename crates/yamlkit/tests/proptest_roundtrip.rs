//! Property tests for the yamlkit engine: the emitter/parser pair must
//! round-trip arbitrary value trees, and the wildcard-match IoU must obey
//! its mathematical invariants.

use proptest::prelude::*;
use yamlkit::labels::MatchTree;
use yamlkit::Yaml;

/// Strategy for scalar strings that exercise quoting edge cases without
/// drowning the shrinker in exotic unicode.
fn scalar_string() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9_./:-]{0,12}",
        Just("true".to_owned()),
        Just("5000".to_owned()),
        Just("null".to_owned()),
        Just("- dash".to_owned()),
        Just("a: b".to_owned()),
        Just("has # hash".to_owned()),
        Just("it's".to_owned()),
        Just("line1\nline2".to_owned()),
        Just("trail\n".to_owned()),
        Just("*star".to_owned()),
        Just("&anchor".to_owned()),
        Just(" leading".to_owned()),
    ]
}

/// Strategy for strings exercised through the JSON wire format: quote and
/// escape edge cases, flow punctuation, control characters, unicode.
fn wire_string() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9_./:-]{0,12}",
        Just(String::new()),
        Just("a\"b".to_owned()),
        Just("back\\slash".to_owned()),
        Just("trailing\\".to_owned()),
        Just("a: b".to_owned()),
        Just("comma, brace }".to_owned()),
        Just("]{[".to_owned()),
        Just("line1\nline2".to_owned()),
        Just("tab\there".to_owned()),
        Just("\u{1}ctl".to_owned()),
        Just("写一个 pod".to_owned()),
        Just("1.0".to_owned()),
        Just("null".to_owned()),
        Just("has # hash".to_owned()),
    ]
}

/// Strategy for JSON-representable values: like [`arb_yaml`] but floats
/// stay finite (JSON has no inf/nan) and strings/keys range over the wire
/// edge cases above. Duplicate map keys are fine here: the JSON writer
/// emits both entries and the flow parser preserves both, in order.
fn arb_json_yaml() -> impl Strategy<Value = Yaml> {
    let leaf = prop_oneof![
        Just(Yaml::Null),
        any::<bool>().prop_map(Yaml::Bool),
        (-1_000_000i64..1_000_000).prop_map(Yaml::Int),
        (-1000.0f64..1000.0).prop_map(Yaml::Float),
        Just(Yaml::Float(1.0)),
        Just(Yaml::Float(-0.0)),
        Just(Yaml::Float(1e300)),
        Just(Yaml::Float(2.5e-10)),
        wire_string().prop_map(Yaml::Str),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Yaml::Seq),
            prop::collection::vec((wire_string(), inner), 0..4).prop_map(Yaml::Map),
        ]
    })
}

fn arb_yaml() -> impl Strategy<Value = Yaml> {
    let leaf = prop_oneof![
        Just(Yaml::Null),
        any::<bool>().prop_map(Yaml::Bool),
        (-1_000_000i64..1_000_000).prop_map(Yaml::Int),
        (-1000.0f64..1000.0).prop_map(|f| Yaml::Float((f * 16.0).round() / 16.0)),
        scalar_string().prop_map(Yaml::Str),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Yaml::Seq),
            prop::collection::vec(("[a-zA-Z][a-zA-Z0-9_.-]{0,8}", inner), 0..4).prop_map(
                |entries| {
                    // Deduplicate keys: duplicate-key maps do not round-trip
                    // (the parser keeps both, dictionary loads keep the last).
                    let mut seen = std::collections::HashSet::new();
                    Yaml::Map(
                        entries
                            .into_iter()
                            .filter(|(k, _)| seen.insert(k.clone()))
                            .collect(),
                    )
                }
            ),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse(emit(v)) == v for every value tree.
    #[test]
    fn emit_parse_round_trip(v in arb_yaml()) {
        let text = yamlkit::emit(&v);
        let back = yamlkit::parse_one(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"))
            .to_value();
        prop_assert_eq!(back, v);
    }

    /// Canonicalization is idempotent.
    #[test]
    fn canonicalize_idempotent(v in arb_yaml()) {
        let text = yamlkit::emit(&v);
        let once = yamlkit::canonicalize(&text).unwrap();
        let twice = yamlkit::canonicalize(&once).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// A document always matches its own (unlabeled) match tree with IoU 1.
    #[test]
    fn iou_reflexive(v in arb_yaml()) {
        let text = yamlkit::emit(&v);
        let node = yamlkit::parse_one(&text).unwrap();
        let tree = MatchTree::from_node(&node);
        let value = node.to_value();
        prop_assert!((tree.iou(&value) - 1.0).abs() < 1e-12);
    }

    /// IoU is always within [0, 1].
    #[test]
    fn iou_bounded(a in arb_yaml(), b in arb_yaml()) {
        let text = yamlkit::emit(&a);
        let tree = MatchTree::from_node(&yamlkit::parse_one(&text).unwrap());
        let score = tree.iou(&b);
        prop_assert!((0.0..=1.0).contains(&score), "iou {score} out of range");
    }

    /// eq_unordered is reflexive and agrees with kv-exact equality on
    /// emitted round trips.
    #[test]
    fn eq_unordered_reflexive(v in arb_yaml()) {
        prop_assert!(v.eq_unordered(&v));
        let back = yamlkit::parse_one(&yamlkit::emit(&v)).unwrap().to_value();
        prop_assert!(v.eq_unordered(&back));
    }

    /// JSON rendering never panics and produces non-empty output.
    #[test]
    fn json_total(v in arb_yaml()) {
        prop_assert!(!yamlkit::json::to_json(&v).is_empty());
        prop_assert!(!yamlkit::json::to_json_pretty(&v).is_empty());
    }

    /// The API wire-format contract: compact JSON output re-parses through
    /// the YAML parser (JSON is a YAML subset) to a value equal to the
    /// original — types included, so floats stay floats and quoted
    /// number-lookalikes stay strings.
    #[test]
    fn json_reparses_through_yaml_parser(v in arb_json_yaml()) {
        let wire = yamlkit::json::to_json(&v);
        let back = yamlkit::parse_one(&wire)
            .unwrap_or_else(|e| panic!("wire reparse failed: {e}\n---\n{wire}"))
            .to_value();
        prop_assert_eq!(back, v);
    }
}
