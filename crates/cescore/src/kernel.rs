//! Symbol-interned scoring kernels: rolling-hash BLEU n-gram counting
//! and bit-parallel line edit distance, with all reference-side work
//! precomputed once per problem.
//!
//! The legacy kernels ([`crate::bleu_tokens_ref`] and the rolling-row
//! LCS behind [`crate::line_edit_distance_lines`]) operate on `&str`
//! slices: every BLEU order re-hashes every n-gram window — hashing `n`
//! strings per window, on *both* sides, per candidate — and the LCS DP
//! runs a string compare per cell. This module moves the hot path onto
//! dense `u32` symbols from the per-document interner
//! ([`yamlkit::doc::SymStream`]):
//!
//! * [`RefNgrams`] — the reference's 1–4-gram count tables, built
//!   **once** per reference (they live on `cescore::PreparedRef`, so a
//!   pass@k sweep shares them across all candidates). Each table is a
//!   flat open-addressing map from the n-gram window — the `n` symbol
//!   ids packed exactly into a `u128` key, maintained by a rolling
//!   shift-or as the window slides — to its occurrence count. Keys are
//!   compared exactly, so a hash collision can never conflate two
//!   distinct grams.
//! * [`bleu_kernel`] — translates the candidate's symbols into the
//!   reference's symbol space (one read-only interner probe per
//!   *distinct* candidate token), then counts candidate windows against
//!   the reference tables. Clipped counts are integers; the final
//!   floating-point steps replicate [`crate::bleu_tokens_ref`]
//!   operation-for-operation, so scores are bit-identical.
//! * [`RefLineIndex`] — the reference's lines interned to dense ids,
//!   built once per reference.
//! * [`edit_distance_kernel`] — maps candidate lines to reference line
//!   ids via cached per-line hashes, trims the common prefix/suffix,
//!   and runs a bit-parallel LCS (Hyyrö/Crochemore `(V + U) | (V - U)`
//!   form, 64 lines per machine word) instead of the O(n·m)
//!   string-comparing DP. LCS length is a well-defined integer, so the
//!   derived distance and score are exactly the legacy values.
//! * [`ScoreScratch`] — every transient the kernels need (candidate
//!   count table, translation buffers, match-mask rows, bit vectors),
//!   owned by a scoring worker and reused across records so steady-state
//!   scoring allocates nothing.

use yamlkit::doc::SymStream;
use yamlkit::intern::StrInterner;

use crate::Smoothing;

/// Highest BLEU order (uniform 1–4-gram weights, as the paper uses).
const MAX_N: usize = 4;
/// NLTK smoothing-method-1 epsilon, mirrored from the legacy kernel.
const EPS: f64 = 0.1;
/// Candidate symbol with no equivalent in the reference vocabulary. Any
/// window containing it can never match a reference gram (reference ids
/// are dense and far below it), so one shared sentinel is exact.
const UNSEEN: u32 = u32::MAX;

/// FNV-1a over the first `n` little-endian `u32` lanes of a packed
/// n-gram key — the rolling window's hash into the count tables.
#[inline]
fn gram_hash(key: u128, n: usize) -> u64 {
    let bytes = key.to_le_bytes();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes[..n * 4] {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The window mask for order `n`: keeps the low `n` 32-bit lanes.
#[inline]
fn window_mask(n: usize) -> u128 {
    if n >= 4 {
        u128::MAX
    } else {
        (1u128 << (32 * n)) - 1
    }
}

/// One open-addressing n-gram count table: packed `u128` window keys
/// (compared exactly) and `u32` counts, power-of-two capacity, count 0
/// marking an empty slot.
#[derive(Debug, Clone, Default)]
struct NgramTable {
    keys: Vec<u128>,
    counts: Vec<u32>,
}

impl NgramTable {
    fn with_window_count(windows: usize) -> NgramTable {
        let cap = (windows.max(4) * 2).next_power_of_two();
        NgramTable {
            keys: vec![0; cap],
            counts: vec![0; cap],
        }
    }

    #[inline]
    fn slot_of(&self, key: u128, n: usize) -> usize {
        let mask = self.keys.len() - 1;
        let mut slot = (gram_hash(key, n) as usize) & mask;
        while self.counts[slot] != 0 && self.keys[slot] != key {
            slot = (slot + 1) & mask;
        }
        slot
    }

    /// Occurrences of the window `key`, 0 when absent.
    #[inline]
    fn get(&self, key: u128, n: usize) -> u32 {
        if self.counts.is_empty() {
            return 0;
        }
        self.counts[self.slot_of(key, n)]
    }

    /// Increments the count of `key` (the table is sized up front for
    /// its window count, so load never exceeds 1/2).
    #[inline]
    fn bump(&mut self, key: u128, n: usize) {
        let slot = self.slot_of(key, n);
        self.keys[slot] = key;
        self.counts[slot] += 1;
    }
}

/// The reference side of BLEU, precomputed once per reference: one
/// `NgramTable` per order 1–4 over the reference's interned symbol
/// stream, plus the token count the brevity penalty and effective-order
/// computation need.
///
/// Built by [`RefNgrams::build`] from a document's
/// [`SymStream`]; lives on `cescore::PreparedRef` so every candidate of
/// a pass@k sweep shares the same tables.
#[derive(Debug, Clone, Default)]
pub struct RefNgrams {
    tables: [NgramTable; MAX_N],
    len: usize,
}

impl RefNgrams {
    /// Counts every 1–4-gram of the reference stream, maintaining each
    /// order's packed window key by rolling shift-or.
    pub fn build(stream: &SymStream) -> RefNgrams {
        let syms = stream.syms();
        let len = syms.len();
        let mut tables: [NgramTable; MAX_N] = Default::default();
        for (n, table) in tables.iter_mut().enumerate() {
            let n = n + 1;
            if len < n {
                continue;
            }
            *table = NgramTable::with_window_count(len - n + 1);
            let mask = window_mask(n);
            let mut key: u128 = 0;
            for (i, sym) in syms.iter().enumerate() {
                key = ((key << 32) | u128::from(sym.0)) & mask;
                if i + 1 >= n {
                    table.bump(key, n);
                }
            }
        }
        RefNgrams { tables, len }
    }

    /// Token count of the reference stream.
    pub fn token_len(&self) -> usize {
        self.len
    }
}

/// The reference side of line edit distance, precomputed once per
/// reference: every reference line interned to a dense id (exact string
/// equality, deduplicated), plus the id sequence.
#[derive(Debug, Clone, Default)]
pub struct RefLineIndex {
    interner: StrInterner,
    ids: Vec<u32>,
}

impl RefLineIndex {
    /// Interns the reference's line table.
    pub fn build(lines: &[&str]) -> RefLineIndex {
        let mut interner = StrInterner::with_capacity(lines.len());
        let ids = lines.iter().map(|l| interner.intern(l).0).collect();
        RefLineIndex { interner, ids }
    }

    /// Number of reference lines.
    pub fn line_len(&self) -> usize {
        self.ids.len()
    }

    /// Number of *distinct* reference lines (the match-mask row space).
    fn distinct(&self) -> usize {
        self.interner.len()
    }
}

/// Reusable kernel scratch: count tables, translation buffers, match
/// masks and bit vectors, owned by one scoring worker and reused across
/// records so repeated scoring allocates nothing in steady state.
///
/// [`crate::score_pair_prepared`] keeps one per thread automatically;
/// workers that want explicit control (the harness's scoring pools, the
/// benches) own one and call [`crate::score_pair_prepared_with`].
#[derive(Debug, Default)]
pub struct ScoreScratch {
    /// Candidate symbol id → reference symbol id (or [`UNSEEN`]),
    /// rebuilt per pair, indexed by the candidate's dense sym ids.
    translate: Vec<u32>,
    /// The candidate token stream mapped into reference symbol space.
    cand_stream: Vec<u32>,
    /// Candidate-side count table: windows that exist in the reference,
    /// with their candidate count and (cached) reference count.
    gram_keys: Vec<u128>,
    gram_cand: Vec<u32>,
    gram_ref: Vec<u32>,
    /// Occupied slots of the candidate table, for O(distinct) clearing.
    touched: Vec<usize>,
    /// Candidate line ids in reference line space (or [`UNSEEN`]).
    cand_lines: Vec<u32>,
    /// Flat match-mask rows, `line_words` words per distinct reference
    /// line id, cleared lazily via `row_gen` generation stamps.
    line_masks: Vec<u64>,
    row_gen: Vec<u32>,
    generation: u32,
    line_words: usize,
    /// The LCS bit vector (one bit per reference line in the trimmed
    /// window).
    v: Vec<u64>,
}

impl ScoreScratch {
    /// Fresh, empty scratch. All buffers grow on demand and are then
    /// reused.
    pub fn new() -> ScoreScratch {
        ScoreScratch::default()
    }

    /// Ensures the candidate gram table can hold `windows` distinct
    /// entries at ≤ 1/2 load, preserving nothing.
    fn reserve_grams(&mut self, windows: usize) {
        let cap = (windows.max(4) * 2).next_power_of_two();
        if self.gram_keys.len() < cap {
            self.gram_keys = vec![0; cap];
            self.gram_cand = vec![0; cap];
            self.gram_ref = vec![0; cap];
            self.touched.clear();
        }
    }

    /// Zeroes the occupied candidate-table slots (O(distinct grams)).
    fn clear_grams(&mut self) {
        for &slot in &self.touched {
            self.gram_cand[slot] = 0;
        }
        self.touched.clear();
    }

    /// Ensures match-mask rows exist for `rows` distinct line ids at
    /// `words` words per row, invalidating stale rows when the row
    /// width changes.
    fn reserve_masks(&mut self, rows: usize, words: usize) {
        if self.line_words != words || self.row_gen.len() < rows {
            self.line_words = words;
            self.line_masks = vec![0; rows.max(1) * words];
            self.row_gen = vec![0; rows.max(1)];
            self.generation = 0;
        }
        self.generation += 1;
    }
}

/// Sentence BLEU of a candidate against a precomputed reference, on
/// interned symbols — bit-identical to
/// [`crate::bleu_tokens_ref`]`(reference_tokens, candidate_tokens, smoothing)`.
///
/// `ref_stream` is the reference's own symbol stream (its interner is
/// the shared vocabulary candidates translate into); `ngrams` its
/// precomputed count tables; `cand_stream` the candidate's cached
/// symbol stream.
pub fn bleu_kernel(
    ref_stream: &SymStream,
    ngrams: &RefNgrams,
    cand_stream: &SymStream,
    scratch: &mut ScoreScratch,
    smoothing: Smoothing,
) -> f64 {
    let cand_len = cand_stream.len();
    let ref_len = ngrams.token_len();
    if cand_len == 0 || ref_len == 0 {
        return 0.0;
    }
    // Translate the candidate vocabulary into reference symbol space:
    // one read-only probe per *distinct* candidate token.
    let ref_interner = ref_stream.interner();
    let cand_interner = cand_stream.interner();
    scratch.translate.clear();
    scratch.translate.extend((0..cand_interner.len()).map(|id| {
        let text = cand_interner.resolve(yamlkit::intern::Sym(id as u32));
        ref_interner.lookup(text).map_or(UNSEEN, |sym| sym.0)
    }));
    scratch.cand_stream.clear();
    scratch.cand_stream.extend(
        cand_stream
            .syms()
            .iter()
            .map(|sym| scratch.translate[sym.0 as usize]),
    );

    let effective_n = MAX_N.min(ref_len);
    let mut log_precisions = [0.0f64; MAX_N];
    let mut orders = 0usize;
    for n in 1..=effective_n {
        let total = if cand_len >= n { cand_len - n + 1 } else { 0 };
        if total == 0 {
            // Candidate shorter than n, reference is not.
            match smoothing {
                Smoothing::None => return 0.0,
                Smoothing::Epsilon => {
                    log_precisions[orders] = EPS.ln();
                    orders += 1;
                    continue;
                }
            }
        }
        scratch.reserve_grams(total);
        let table = &ngrams.tables[n - 1];
        let mask = window_mask(n);
        let slot_mask = scratch.gram_keys.len() - 1;
        let mut key: u128 = 0;
        for (i, &sym) in scratch.cand_stream.iter().enumerate() {
            key = ((key << 32) | u128::from(sym)) & mask;
            if i + 1 < n {
                continue;
            }
            // Windows absent from the reference clip to zero; skip them
            // so the candidate table only ever holds matchable grams.
            let ref_count = table.get(key, n);
            if ref_count == 0 {
                continue;
            }
            let mut slot = (gram_hash(key, n) as usize) & slot_mask;
            while scratch.gram_cand[slot] != 0 && scratch.gram_keys[slot] != key {
                slot = (slot + 1) & slot_mask;
            }
            if scratch.gram_cand[slot] == 0 {
                scratch.gram_keys[slot] = key;
                scratch.gram_ref[slot] = ref_count;
                scratch.touched.push(slot);
            }
            scratch.gram_cand[slot] += 1;
        }
        let clipped: usize = scratch
            .touched
            .iter()
            .map(|&slot| scratch.gram_cand[slot].min(scratch.gram_ref[slot]) as usize)
            .sum();
        scratch.clear_grams();
        let p = if clipped == 0 {
            match smoothing {
                Smoothing::None => return 0.0,
                Smoothing::Epsilon => EPS / total as f64,
            }
        } else {
            clipped as f64 / total as f64
        };
        log_precisions[orders] = p.ln();
        orders += 1;
    }
    if orders == 0 {
        return 0.0;
    }
    let mean_log = log_precisions[..orders].iter().sum::<f64>() / orders as f64;
    crate::bleu::brevity_penalty(ref_len, cand_len) * mean_log.exp()
}

/// Line insertions + deletions between the reference (as a precomputed
/// [`RefLineIndex`]) and a candidate line table — the same integer as
/// [`crate::line_edit_distance_lines`] on the corresponding `&str`
/// tables.
///
/// `cand_hashes[i]` must be the FNV-1a hash of `cand_lines[i]` (the
/// cached [`yamlkit::doc::PreparedDoc::line_hashes`] view), so mapping
/// a candidate into reference line space costs one probe per line.
pub fn edit_distance_kernel(
    reference: &RefLineIndex,
    cand_lines: &[&str],
    cand_hashes: &[u64],
    scratch: &mut ScoreScratch,
) -> usize {
    debug_assert_eq!(cand_lines.len(), cand_hashes.len());
    let a = &reference.ids;
    scratch.cand_lines.clear();
    scratch
        .cand_lines
        .extend(cand_lines.iter().zip(cand_hashes).map(|(line, &hash)| {
            reference
                .interner
                .lookup_hashed(hash, line)
                .map_or(UNSEEN, |sym| sym.0)
        }));
    let b = std::mem::take(&mut scratch.cand_lines);
    // Common prefix/suffix lines are LCS members by construction; trim
    // them so the bit-parallel core only sees the differing window.
    let mut lo = 0usize;
    while lo < a.len() && lo < b.len() && a[lo] == b[lo] {
        lo += 1;
    }
    let mut a_hi = a.len();
    let mut b_hi = b.len();
    while a_hi > lo && b_hi > lo && a[a_hi - 1] == b[b_hi - 1] {
        a_hi -= 1;
        b_hi -= 1;
    }
    let lcs =
        lo + (a.len() - a_hi) + lcs_bitparallel(reference, &a[lo..a_hi], &b[lo..b_hi], scratch);
    let distance = (a.len() - lcs) + (b.len() - lcs);
    scratch.cand_lines = b;
    distance
}

/// Bit-parallel LCS length over the trimmed windows: the reference
/// window `a` is the bit dimension (64 lines per word), the candidate
/// window `b` drives the scan with the Hyyrö/Crochemore recurrence
/// `U = V & M[b_j]; V = (V + U) | (V - U)` carried across words.
/// Candidate lines outside the reference vocabulary (or outside the
/// trimmed window) have an all-zero match mask and leave `V` unchanged,
/// exactly like a DP row with no matches.
fn lcs_bitparallel(
    reference: &RefLineIndex,
    a: &[u32],
    b: &[u32],
    scratch: &mut ScoreScratch,
) -> usize {
    let m = a.len();
    if m == 0 || b.is_empty() {
        return 0;
    }
    let words = m.div_ceil(64);
    scratch.reserve_masks(reference.distinct(), words);
    let generation = scratch.generation;
    // Match masks: bit i of row `id` set iff a[i] == id. Rows are
    // cleared lazily on first touch this generation.
    for (i, &id) in a.iter().enumerate() {
        let row = id as usize * words;
        if scratch.row_gen[id as usize] != generation {
            scratch.row_gen[id as usize] = generation;
            scratch.line_masks[row..row + words].fill(0);
        }
        scratch.line_masks[row + i / 64] |= 1u64 << (i % 64);
    }
    scratch.v.clear();
    scratch.v.resize(words, u64::MAX);
    for &id in b {
        let id = id as usize;
        // A candidate line never seen in the reference, or seen only in
        // the trimmed-away prefix/suffix, matches nothing in `a`.
        let row = if id < scratch.row_gen.len() && scratch.row_gen[id] == generation {
            id * words
        } else {
            continue;
        };
        let mut carry = 0u64;
        let mut borrow = 0u64;
        for w in 0..words {
            let v = scratch.v[w];
            let u = v & scratch.line_masks[row + w];
            let (sum, c1) = v.overflowing_add(u);
            let (sum, c2) = sum.overflowing_add(carry);
            carry = u64::from(c1) | u64::from(c2);
            let (diff, b1) = v.overflowing_sub(u);
            let (diff, b2) = diff.overflowing_sub(borrow);
            borrow = u64::from(b1) | u64::from(b2);
            scratch.v[w] = sum | diff;
        }
    }
    // Zero bits among the low m positions are LCS members.
    let mut ones = 0usize;
    for (w, &word) in scratch.v.iter().enumerate() {
        let live = if (w + 1) * 64 <= m {
            word
        } else {
            word & ((1u64 << (m % 64)) - 1)
        };
        ones += live.count_ones() as usize;
    }
    m - ones
}

/// The paper's edit-distance score over the kernel distance — the same
/// arithmetic as [`crate::edit_distance_score_lines`].
pub fn edit_distance_score_kernel(
    reference: &RefLineIndex,
    cand_lines: &[&str],
    cand_hashes: &[u64],
    scratch: &mut ScoreScratch,
) -> f64 {
    let ref_len = reference.line_len();
    if ref_len == 0 {
        return if cand_lines.is_empty() { 1.0 } else { 0.0 };
    }
    let dist = edit_distance_kernel(reference, cand_lines, cand_hashes, scratch);
    (1.0 - dist as f64 / ref_len as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yamlkit::PreparedDoc;

    fn bleu_both(reference: &str, candidate: &str, smoothing: Smoothing) -> (f64, f64) {
        let r = PreparedDoc::new(reference);
        let c = PreparedDoc::new(candidate);
        let ngrams = RefNgrams::build(r.sym_stream());
        let mut scratch = ScoreScratch::new();
        let kernel = bleu_kernel(
            r.sym_stream(),
            &ngrams,
            c.sym_stream(),
            &mut scratch,
            smoothing,
        );
        let legacy = crate::bleu(reference, candidate, smoothing);
        (kernel, legacy)
    }

    #[test]
    fn bleu_kernel_matches_legacy_on_representative_pairs() {
        for (r, c) in [
            (
                "kind: Service\nmetadata:\n  name: web\n",
                "kind: Service\nmetadata:\n  name: web\n",
            ),
            (
                "kind: Service\nmetadata:\n  name: web\n",
                "kind: Service\nmetadata:\n  name: other\n",
            ),
            ("a b c d e f", "f e d c b a"),
            ("a", "a a a a a"),
            ("a b", ""),
            ("", "a b"),
            ("x", "y"),
            ("a b c", "a b"),
            ("aaa bbb ccc ddd", "eee fff ggg hhh"),
            ("k: v", "k: v\nk2: v2"),
        ] {
            for smoothing in [Smoothing::Epsilon, Smoothing::None] {
                let (kernel, legacy) = bleu_both(r, c, smoothing);
                assert_eq!(
                    kernel.to_bits(),
                    legacy.to_bits(),
                    "bleu diverged on ({r:?}, {c:?}, {smoothing:?}): {kernel} vs {legacy}"
                );
            }
        }
    }

    fn edit_both(reference: &str, candidate: &str) -> (usize, usize) {
        let r = PreparedDoc::new(reference);
        let c = PreparedDoc::new(candidate);
        let index = RefLineIndex::build(&r.lines());
        let mut scratch = ScoreScratch::new();
        let kernel = edit_distance_kernel(&index, &c.lines(), c.line_hashes(), &mut scratch);
        let legacy = crate::line_edit_distance(reference, candidate);
        (kernel, legacy)
    }

    #[test]
    fn edit_kernel_matches_legacy_on_representative_pairs() {
        for (r, c) in [
            ("a\nb\nc", "a\nb\nc"),
            ("a\nb\nc", "a\nX\nc"),
            ("a\nc", "a\nb\nc"),
            ("a\nb\nc", "a\nc"),
            ("a", "x\ny\nz\nw\n"),
            ("", ""),
            ("", "a\n"),
            ("a\nb", "x\ny"),
            ("a\na\na", "a\na"),
            ("x\na\nb\nc\nx", "y\na\nc\nb\ny"),
        ] {
            let (kernel, legacy) = edit_both(r, c);
            assert_eq!(kernel, legacy, "edit distance diverged on ({r:?}, {c:?})");
        }
    }

    #[test]
    fn bitparallel_lcs_crosses_word_boundaries() {
        // 130 reference lines (3 words), candidate = every other line:
        // LCS is the full candidate.
        let ref_lines: Vec<String> = (0..130).map(|i| format!("line-{i}")).collect();
        let cand: Vec<String> = ref_lines.iter().step_by(2).cloned().collect();
        let r = ref_lines.join("\n");
        let c = cand.join("\n");
        let (kernel, legacy) = edit_both(&r, &c);
        assert_eq!(kernel, legacy);
        assert_eq!(kernel, 130 - 65);
    }

    #[test]
    fn scratch_reuse_is_pure() {
        let mut scratch = ScoreScratch::new();
        let pairs = [
            ("a\nb\nc\nd", "a\nX\nc"),
            ("kind: Pod\nname: x", "kind: Pod\nname: y"),
            ("", "z"),
            ("a\nb\nc\nd", "a\nX\nc"),
        ];
        let mut first = Vec::new();
        for (r, c) in pairs {
            let rd = PreparedDoc::new(r);
            let cd = PreparedDoc::new(c);
            let ngrams = RefNgrams::build(rd.sym_stream());
            let index = RefLineIndex::build(&rd.lines());
            first.push((
                bleu_kernel(
                    rd.sym_stream(),
                    &ngrams,
                    cd.sym_stream(),
                    &mut scratch,
                    Smoothing::Epsilon,
                ),
                edit_distance_kernel(&index, &cd.lines(), cd.line_hashes(), &mut scratch),
            ));
        }
        assert_eq!(first[0], first[3], "reused scratch changed a result");
    }
}
