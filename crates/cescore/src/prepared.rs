//! Parse-once scoring: [`PreparedRef`] + [`score_pair_prepared`].
//!
//! [`crate::score_pair`] on raw text parses the reference three times
//! (label stripping, kv-exact, kv-wildcard) and the candidate twice —
//! and under pass@k sampling the *same* reference is re-parsed for every
//! candidate. This module splits the work by lifetime:
//!
//! * [`PreparedRef`] — everything derivable from the labeled reference
//!   alone, built once per problem per session (via [`RefCache`]): the
//!   cleaned text, its parsed/tokenized views, the label match trees and
//!   the reference leaf count;
//! * [`yamlkit::PreparedDoc`] — everything derivable from the candidate
//!   alone, built once per candidate and shared by `Arc` with the
//!   substrate stage;
//! * [`score_pair_prepared`] — the pure join: all five static metrics
//!   from cached views, score-identical to the text path (proved by the
//!   `proptest_metrics` suite).
//!
//! A reference that fails to parse is a **benchmark bug**, not a model
//! failure: the text path silently scored the YAML-aware metrics 0.0.
//! The prepared path keeps the numbers (score identity) but surfaces a
//! typed [`ScoreIssue`] on the [`PreparedRef`], logged once per problem,
//! which the harness and service layers attach to their verdicts.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use yamlkit::labels::MatchTree;
use yamlkit::PreparedDoc;

use crate::kernel::{
    bleu_kernel, edit_distance_score_kernel, RefLineIndex, RefNgrams, ScoreScratch,
};
use crate::{normalized_eq, Scores, Smoothing};

/// A defect in the benchmark inputs (not the candidate) detected during
/// scoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoreIssue {
    /// The labeled reference solution is not parseable YAML — the
    /// YAML-aware metrics degrade to 0.0 for *every* candidate of this
    /// problem, which says nothing about the model.
    ReferenceUnparsable {
        /// The parser's diagnosis.
        error: String,
    },
}

impl ScoreIssue {
    /// Compact wire label (`reference_unparsable: ...`) for verdicts.
    pub fn wire(&self) -> String {
        match self {
            ScoreIssue::ReferenceUnparsable { error } => {
                format!("reference_unparsable: {error}")
            }
        }
    }
}

impl fmt::Display for ScoreIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreIssue::ReferenceUnparsable { error } => {
                write!(f, "reference does not parse as YAML: {error}")
            }
        }
    }
}

/// References whose parse failure has already been logged, keyed by
/// content hash — a broken reference is reported once per process, not
/// once per candidate scored against it.
fn issue_logged_once(reference_hash: u64) -> bool {
    static LOGGED: OnceLock<Mutex<std::collections::HashSet<u64>>> = OnceLock::new();
    LOGGED
        .get_or_init(|| Mutex::new(std::collections::HashSet::new()))
        .lock()
        .expect("issue log poisoned")
        .insert(reference_hash)
}

/// A labeled reference prepared for repeated scoring: parsed once, label
/// trees lifted once, cleaned text emitted and re-tokenized once.
///
/// # Examples
///
/// ```
/// use cescore::{score_pair, score_pair_prepared, PreparedRef};
/// use yamlkit::PreparedDoc;
///
/// let reference = "kind: Service\nmetadata:\n  name: web # *\nspec:\n  port: 80\n";
/// let candidate = "kind: Service\nmetadata:\n  name: frontend\nspec:\n  port: 80\n";
/// let prepared = PreparedRef::new(reference);
/// let s = score_pair_prepared(&prepared, &PreparedDoc::new(candidate));
/// assert_eq!(s, score_pair(reference, candidate));
/// assert_eq!(s.kv_wildcard, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct PreparedRef {
    labeled_hash: u64,
    /// Whether the labeled reference parsed (label trees are valid).
    labeled_parses: bool,
    /// The cleaned reference (labels stripped), itself fully prepared —
    /// text metrics and kv-exact run off this document. When the labeled
    /// text does not parse this wraps the raw text (the text path's
    /// fallback), so text metrics still work.
    clean: PreparedDoc,
    /// Label match trees, one per document of the labeled reference.
    trees: Vec<MatchTree>,
    /// Total reference-side leaf count across the trees.
    ref_leaves: usize,
    /// The cleaned reference's 1–4-gram count tables, built once here so
    /// every pass@k candidate scores BLEU against shared tables.
    ngrams: RefNgrams,
    /// The cleaned reference's interned line table, the reference side
    /// of the bit-parallel edit-distance kernel.
    line_index: RefLineIndex,
    issue: Option<ScoreIssue>,
}

impl PreparedRef {
    /// Prepares a labeled reference. An unparseable reference records a
    /// [`ScoreIssue`] (and logs it once per distinct reference text per
    /// process) instead of failing.
    pub fn new(labeled_reference: &str) -> PreparedRef {
        let labeled = PreparedDoc::new(labeled_reference);
        let labeled_hash = labeled.content_hash();
        if let Some(err) = labeled.parse_error() {
            let issue = ScoreIssue::ReferenceUnparsable {
                error: err.to_string(),
            };
            if issue_logged_once(labeled_hash) {
                eprintln!("cescore: benchmark bug: {issue}");
            }
            // The text path falls back to the raw labeled text for
            // text-level metrics; mirror it exactly.
            let clean = labeled;
            let ngrams = RefNgrams::build(clean.sym_stream());
            let line_index = RefLineIndex::build(&clean.lines());
            return PreparedRef {
                labeled_hash,
                labeled_parses: false,
                clean,
                trees: Vec::new(),
                ref_leaves: 0,
                ngrams,
                line_index,
                issue: Some(issue),
            };
        }
        // Label trees come straight off the arena backing store — the
        // labeled reference never materializes its boxed `Node` trees.
        let trees: Vec<MatchTree> = labeled.match_trees();
        let ref_leaves = trees.iter().map(MatchTree::leaf_count).sum();
        // The cleaned text is parse→emit of the labeled reference — then
        // prepared in turn, so kv-exact and the text metrics read cached
        // views instead of re-parsing per candidate.
        let clean = PreparedDoc::new(yamlkit::emit_all(labeled.values()));
        // The scoring-kernel reference sides: n-gram count tables over
        // the clean document's interned token stream and the interned
        // line table, both built exactly once per reference.
        let ngrams = RefNgrams::build(clean.sym_stream());
        let line_index = RefLineIndex::build(&clean.lines());
        PreparedRef {
            labeled_hash,
            labeled_parses: true,
            clean,
            trees,
            ref_leaves,
            ngrams,
            line_index,
            issue: None,
        }
    }

    /// The reference with label comments stripped (what a perfect answer
    /// looks like) — equal to [`crate::strip_label_comments`] output.
    pub fn clean_text(&self) -> &str {
        self.clean.text()
    }

    /// The cleaned reference's prepared document.
    pub fn clean_doc(&self) -> &PreparedDoc {
        &self.clean
    }

    /// Content hash of the *labeled* reference text (the cache key).
    pub fn content_hash(&self) -> u64 {
        self.labeled_hash
    }

    /// The label match trees, one per reference document.
    pub fn match_trees(&self) -> &[MatchTree] {
        &self.trees
    }

    /// The benchmark defect detected while preparing, if any.
    pub fn issue(&self) -> Option<&ScoreIssue> {
        self.issue.as_ref()
    }
}

/// A per-session cache of [`PreparedRef`]s keyed by reference content
/// hash: a pass@k sweep or a full evaluation grid parses each reference
/// exactly once, no matter how many candidates it scores.
///
/// # Examples
///
/// ```
/// let refs = cescore::RefCache::new();
/// let a = refs.prepare("a: 1 # *\n");
/// let b = refs.prepare("a: 1 # *\n");
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(refs.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct RefCache {
    map: Mutex<HashMap<u64, Arc<PreparedRef>>>,
}

impl RefCache {
    /// An empty cache.
    pub fn new() -> RefCache {
        RefCache::default()
    }

    /// The prepared form of `labeled_reference`, built on first sight and
    /// shared thereafter.
    ///
    /// This sits on the scoring hot path (one call per record), so the
    /// lock is never held across preparation: probe, build outside the
    /// lock on a miss, then insert — first writer wins, so two workers
    /// racing on the same cold reference at worst build it twice but
    /// always share one copy afterwards.
    pub fn prepare(&self, labeled_reference: &str) -> Arc<PreparedRef> {
        let key = yamlkit::doc::content_hash(labeled_reference);
        if let Some(found) = self.map.lock().expect("ref cache poisoned").get(&key) {
            return Arc::clone(found);
        }
        let built = Arc::new(PreparedRef::new(labeled_reference));
        let mut map = self.map.lock().expect("ref cache poisoned");
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// Distinct references prepared so far.
    pub fn len(&self) -> usize {
        self.map.lock().expect("ref cache poisoned").len()
    }

    /// Whether nothing has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Key-value exact match over prepared documents — same decision table as
/// [`crate::kv_exact_match`] on the corresponding texts.
fn kv_exact_prepared(clean_ref: &PreparedDoc, candidate: &PreparedDoc) -> f64 {
    if !clean_ref.parses() || !candidate.parses() {
        return 0.0;
    }
    let ref_docs = clean_ref.values();
    let cand_docs = candidate.values();
    if ref_docs.is_empty() || ref_docs.len() != cand_docs.len() {
        return 0.0;
    }
    let all_equal = ref_docs
        .iter()
        .zip(cand_docs)
        .all(|(r, c)| r.eq_unordered(c));
    if all_equal {
        1.0
    } else {
        0.0
    }
}

/// Key-value wildcard match over prepared documents — same arithmetic as
/// [`crate::kv_wildcard_match`] on the corresponding texts.
fn kv_wildcard_prepared(reference: &PreparedRef, candidate: &PreparedDoc) -> f64 {
    if !reference.labeled_parses || !candidate.parses() {
        return 0.0;
    }
    if reference.trees.is_empty() {
        return 0.0;
    }
    let cand_values = candidate.values();
    let mut matched = 0usize;
    for (i, tree) in reference.trees.iter().enumerate() {
        if let Some(cand) = cand_values.get(i) {
            matched += tree.matched_leaves(cand);
        }
    }
    let union = reference.ref_leaves + candidate.leaf_count() - matched;
    if union == 0 {
        1.0
    } else {
        matched as f64 / union as f64
    }
}

/// Pre-resolved `score_kernel_us{metric}` histogram handles in
/// [`obs::global`] — (bleu, editdist). Resolved once per process;
/// recording through a handle is lock-free.
fn kernel_hists() -> &'static (obs::Histogram, obs::Histogram) {
    static HISTS: OnceLock<(obs::Histogram, obs::Histogram)> = OnceLock::new();
    HISTS.get_or_init(|| {
        let registry = obs::global();
        (
            registry.histogram(
                "score_kernel_us",
                &[("metric", "bleu")],
                "latency of the symbol-interned BLEU kernel, per scored pair",
            ),
            registry.histogram(
                "score_kernel_us",
                &[("metric", "editdist")],
                "latency of the bit-parallel edit-distance kernel, per scored pair",
            ),
        )
    })
}

/// Computes the five static metrics from prepared views — the hot path
/// every driver runs on. Score-identical to [`crate::score_pair`] on the
/// corresponding texts (which is a thin wrapper over this) and to
/// [`score_pair_prepared_legacy`], but BLEU and edit distance run on the
/// symbol-interned kernels against the reference tables precomputed in
/// [`PreparedRef::new`].
///
/// Kernel scratch is kept per thread; workers that want explicit
/// ownership (the harness's scoring pools, benches) should hold a
/// [`ScoreScratch`] and call [`score_pair_prepared_with`] directly.
pub fn score_pair_prepared(reference: &PreparedRef, candidate: &PreparedDoc) -> Scores {
    thread_local! {
        static SCRATCH: RefCell<ScoreScratch> = RefCell::new(ScoreScratch::new());
    }
    SCRATCH
        .with(|scratch| score_pair_prepared_with(reference, candidate, &mut scratch.borrow_mut()))
}

/// [`score_pair_prepared`] with caller-owned kernel scratch: count
/// tables, translation buffers, and LCS bit vectors are reused across
/// calls, so a long-lived scoring worker allocates nothing per record in
/// steady state.
///
/// Kernel latencies are recorded to the `score_kernel_us{metric}`
/// histograms in [`obs::global`] when recording is enabled.
pub fn score_pair_prepared_with(
    reference: &PreparedRef,
    candidate: &PreparedDoc,
    scratch: &mut ScoreScratch,
) -> Scores {
    let timed = obs::global().is_enabled();
    let started = timed.then(Instant::now);
    let bleu_score = bleu_kernel(
        reference.clean.sym_stream(),
        &reference.ngrams,
        candidate.sym_stream(),
        scratch,
        Smoothing::Epsilon,
    );
    let mid = timed.then(Instant::now);
    let edit = edit_distance_score_kernel(
        &reference.line_index,
        &candidate.lines(),
        candidate.line_hashes(),
        scratch,
    );
    if let (Some(started), Some(mid)) = (started, mid) {
        let (bleu_hist, edit_hist) = kernel_hists();
        bleu_hist.record(mid.duration_since(started));
        edit_hist.record(mid.elapsed());
    }
    let exact = if normalized_eq(reference.clean_text(), candidate.text()) {
        1.0
    } else {
        0.0
    };
    Scores {
        bleu: bleu_score,
        edit_distance: edit,
        exact_match: exact,
        kv_exact: kv_exact_prepared(&reference.clean, candidate),
        kv_wildcard: kv_wildcard_prepared(reference, candidate),
        unit_test: 0.0,
    }
}

/// The pre-kernel prepared scoring path, kept verbatim as the
/// equivalence oracle for the symbol-interned kernels (the
/// `kernel_equivalence` proptest suite pins
/// [`score_pair_prepared`] == `score_pair_prepared_legacy` on arbitrary
/// pairs) and as the legacy side of the `repro score` A/B report: BLEU
/// re-hashes `&[&str]` n-gram windows per pair and edit distance runs
/// the O(n·m) string-comparing LCS.
pub fn score_pair_prepared_legacy(reference: &PreparedRef, candidate: &PreparedDoc) -> Scores {
    let ref_tokens = reference.clean.tokens();
    let cand_tokens = candidate.tokens();
    let bleu_score = crate::bleu_tokens_ref(&ref_tokens, &cand_tokens, Smoothing::Epsilon);
    let edit =
        crate::editdist::edit_distance_score_lines(&reference.clean.lines(), &candidate.lines());
    let exact = if normalized_eq(reference.clean_text(), candidate.text()) {
        1.0
    } else {
        0.0
    };
    Scores {
        bleu: bleu_score,
        edit_distance: edit,
        exact_match: exact,
        kv_exact: kv_exact_prepared(&reference.clean, candidate),
        kv_wildcard: kv_wildcard_prepared(reference, candidate),
        unit_test: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score_pair_text;

    const REF: &str = "\
apiVersion: v1
kind: Service
metadata:
  name: nginx-service # *
spec:
  selector:
    app: nginx
  ports:
  - name: http
    port: 80
    targetPort: 80
  type: LoadBalancer
";

    #[test]
    fn prepared_matches_text_path_on_representative_candidates() {
        let prepared = PreparedRef::new(REF);
        for candidate in [
            crate::strip_label_comments(REF),
            crate::strip_label_comments(REF).replace("nginx-service", "my-svc"),
            "kind: Service\napiVersion: v1\n".to_owned(),
            "Sure! Here is what you should do: create a service.".to_owned(),
            "not: [valid\n".to_owned(),
            String::new(),
            "a: 1\n---\nb: 2\n".to_owned(),
        ] {
            let got = score_pair_prepared(&prepared, &PreparedDoc::new(candidate.as_str()));
            let want = score_pair_text(REF, &candidate);
            assert_eq!(got, want, "diverged on candidate {candidate:?}");
        }
    }

    #[test]
    fn kernel_path_matches_legacy_path() {
        let prepared = PreparedRef::new(REF);
        let mut scratch = crate::ScoreScratch::new();
        for candidate in [
            crate::strip_label_comments(REF),
            crate::strip_label_comments(REF).replace("nginx-service", "my-svc"),
            "totally different\nprose lines\n".to_owned(),
            "not: [valid\n".to_owned(),
            String::new(),
        ] {
            let doc = PreparedDoc::new(candidate.as_str());
            let kernel = score_pair_prepared_with(&prepared, &doc, &mut scratch);
            let legacy = score_pair_prepared_legacy(&prepared, &doc);
            assert_eq!(kernel, legacy, "kernel diverged on {candidate:?}");
        }
    }

    #[test]
    fn kernel_latency_lands_in_obs_histograms() {
        let prepared = PreparedRef::new(REF);
        let before = obs::global()
            .histogram_snapshot("score_kernel_us", &[("metric", "bleu")])
            .map_or(0, |s| s.count);
        score_pair_prepared(&prepared, &PreparedDoc::new("a: 1\n"));
        let after = obs::global()
            .histogram_snapshot("score_kernel_us", &[("metric", "bleu")])
            .expect("histogram registered")
            .count;
        assert!(after > before, "bleu kernel histogram did not record");
    }

    #[test]
    fn clean_text_equals_strip_label_comments() {
        let prepared = PreparedRef::new(REF);
        assert_eq!(prepared.clean_text(), crate::strip_label_comments(REF));
        assert!(prepared.issue().is_none());
    }

    #[test]
    fn unparsable_reference_surfaces_issue_and_keeps_scores() {
        let broken = "a: [1,\nb: 2\n";
        let prepared = PreparedRef::new(broken);
        let issue = prepared.issue().expect("issue surfaced");
        assert!(matches!(issue, ScoreIssue::ReferenceUnparsable { .. }));
        assert!(issue.wire().starts_with("reference_unparsable:"));
        // Numeric scores stay identical to the text path's silent zeros.
        for candidate in ["a: 1\n", "garbage {{{", ""] {
            let got = score_pair_prepared(&prepared, &PreparedDoc::new(candidate));
            assert_eq!(got, score_pair_text(broken, candidate));
            assert_eq!(got.kv_exact, 0.0);
            assert_eq!(got.kv_wildcard, 0.0);
        }
    }

    #[test]
    fn ref_cache_prepares_each_reference_once() {
        let cache = RefCache::new();
        let a = cache.prepare(REF);
        let b = cache.prepare(REF);
        assert!(Arc::ptr_eq(&a, &b));
        cache.prepare("other: ref\n");
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }
}
