//! Line-level edit distance, mirroring the paper's use of Python's
//! `difflib.Differ` (§3.2): the distance is the number of added plus
//! removed lines in the diff, scaled by the reference length:
//! `score = 1 - edit_distance / len(reference_lines)`, clamped to `[0, 1]`.

/// Number of line insertions + deletions needed to turn `candidate` into
/// `reference` (equivalently, lines flagged `+`/`-` by `difflib.Differ`).
pub fn line_edit_distance(reference: &str, candidate: &str) -> usize {
    let ref_lines: Vec<&str> = reference.lines().collect();
    let cand_lines: Vec<&str> = candidate.lines().collect();
    line_edit_distance_lines(&ref_lines, &cand_lines)
}

/// [`line_edit_distance`] over pre-split line tables — the hot path fed
/// by `PreparedDoc`'s cached line spans, so repeated scoring never
/// re-scans the text for newlines.
pub fn line_edit_distance_lines(ref_lines: &[&str], cand_lines: &[&str]) -> usize {
    let lcs = lcs_len(ref_lines, cand_lines);
    (ref_lines.len() - lcs) + (cand_lines.len() - lcs)
}

/// The paper's edit-distance score: `1 - distance / len(reference)`,
/// clamped below at 0. Identical inputs score 1.0.
///
/// # Examples
///
/// ```
/// let r = "a: 1\nb: 2\nc: 3\n";
/// assert_eq!(cescore::edit_distance_score(r, r), 1.0);
/// assert!(cescore::edit_distance_score(r, "a: 1\nb: 99\nc: 3\n") < 1.0);
/// ```
pub fn edit_distance_score(reference: &str, candidate: &str) -> f64 {
    let ref_lines: Vec<&str> = reference.lines().collect();
    let cand_lines: Vec<&str> = candidate.lines().collect();
    edit_distance_score_lines(&ref_lines, &cand_lines)
}

/// [`edit_distance_score`] over pre-split line tables.
pub fn edit_distance_score_lines(ref_lines: &[&str], cand_lines: &[&str]) -> f64 {
    if ref_lines.is_empty() {
        return if cand_lines.is_empty() { 1.0 } else { 0.0 };
    }
    let dist = line_edit_distance_lines(ref_lines, cand_lines);
    (1.0 - dist as f64 / ref_lines.len() as f64).max(0.0)
}

/// Classic O(n·m) longest-common-subsequence length over lines, with an
/// O(min(n,m)) rolling row.
fn lcs_len(a: &[&str], b: &[&str]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; short.len() + 1];
    let mut cur = vec![0usize; short.len() + 1];
    for &l in long {
        for (j, &s) in short.iter().enumerate() {
            cur[j + 1] = if l == s {
                prev[j] + 1
            } else {
                cur[j].max(prev[j + 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_zero_distance() {
        assert_eq!(line_edit_distance("a\nb\nc", "a\nb\nc"), 0);
        assert_eq!(edit_distance_score("a\nb\nc", "a\nb\nc"), 1.0);
    }

    #[test]
    fn single_line_change_costs_two() {
        // One removal + one insertion, like difflib.Differ output.
        assert_eq!(line_edit_distance("a\nb\nc", "a\nX\nc"), 2);
    }

    #[test]
    fn insertion_costs_one() {
        assert_eq!(line_edit_distance("a\nc", "a\nb\nc"), 1);
    }

    #[test]
    fn deletion_costs_one() {
        assert_eq!(line_edit_distance("a\nb\nc", "a\nc"), 1);
    }

    #[test]
    fn score_clamps_at_zero() {
        // Candidate much longer than reference: distance exceeds ref length.
        let score = edit_distance_score("a", "x\ny\nz\nw\n");
        assert_eq!(score, 0.0);
    }

    #[test]
    fn empty_reference() {
        assert_eq!(edit_distance_score("", ""), 1.0);
        assert_eq!(edit_distance_score("", "a\n"), 0.0);
    }

    #[test]
    fn completely_different_scores_zero() {
        assert_eq!(edit_distance_score("a\nb", "x\ny"), 0.0);
    }

    #[test]
    fn partial_match_scales() {
        // 4 ref lines, one changed: distance 2, score 1 - 2/4 = 0.5.
        let r = "a\nb\nc\nd";
        let c = "a\nb\nX\nd";
        assert!((edit_distance_score(r, c) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lcs_handles_asymmetric_lengths() {
        assert_eq!(lcs_len(&["a"], &["b", "a", "c"]), 1);
        assert_eq!(lcs_len(&[], &["a"]), 0);
    }
}
