//! YAML-aware metrics (§3.2): key-value exact match and key-value wildcard
//! match. Both load documents into order-insensitive structures instead of
//! comparing text, so cosmetic reordering does not hurt the score.

use yamlkit::labels::MatchTree;
use yamlkit::{parse, Node, Yaml};

/// Key-value exact match: 1 when both texts parse as YAML and every
/// document compares equal as an (unordered) dictionary, else 0.
///
/// # Examples
///
/// ```
/// let reference = "a: 1\nb: 2\n";
/// let reordered = "b: 2\na: 1\n";
/// assert_eq!(cescore::kv_exact_match(reference, reordered), 1.0);
/// assert_eq!(cescore::kv_exact_match(reference, "a: 1\n"), 0.0);
/// ```
pub fn kv_exact_match(reference: &str, candidate: &str) -> f64 {
    let Ok(ref_docs) = parse(reference) else {
        return 0.0;
    };
    let Ok(cand_docs) = parse(candidate) else {
        return 0.0;
    };
    if ref_docs.is_empty() || ref_docs.len() != cand_docs.len() {
        return 0.0;
    }
    let all_equal = ref_docs
        .iter()
        .zip(&cand_docs)
        .all(|(r, c)| r.to_value().eq_unordered(&c.to_value()));
    if all_equal {
        1.0
    } else {
        0.0
    }
}

/// Key-value wildcard match: IoU of matched leaves between the labeled
/// reference and the candidate (0 when the candidate is not valid YAML).
///
/// Multi-document streams pair documents by index; leaves of unpaired
/// documents count toward the union only.
///
/// # Examples
///
/// ```
/// let reference = "metadata:\n  name: web # *\nport: 80\n";
/// let candidate = "metadata:\n  name: anything\nport: 80\n";
/// assert_eq!(cescore::kv_wildcard_match(reference, candidate), 1.0);
/// ```
pub fn kv_wildcard_match(reference: &str, candidate: &str) -> f64 {
    let Ok(ref_docs) = parse(reference) else {
        return 0.0;
    };
    let Ok(cand_docs) = parse(candidate) else {
        return 0.0;
    };
    if ref_docs.is_empty() {
        return 0.0;
    }
    let cand_values: Vec<Yaml> = cand_docs.iter().map(Node::to_value).collect();
    let mut matched = 0usize;
    let mut ref_leaves = 0usize;
    let mut cand_leaves: usize = cand_values.iter().map(Yaml::leaf_count).sum();
    if cand_docs.is_empty() {
        cand_leaves = 0;
    }
    for (i, ref_doc) in ref_docs.iter().enumerate() {
        let tree = MatchTree::from_node(ref_doc);
        ref_leaves += tree.leaf_count();
        if let Some(cand) = cand_values.get(i) {
            matched += tree.matched_leaves(cand);
        }
    }
    let union = ref_leaves + cand_leaves - matched;
    if union == 0 {
        1.0
    } else {
        matched as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_exact_ignores_order_and_format() {
        let r = "spec:\n  replicas: 3\n  selector:\n    app: web\n";
        let c = "spec:\n  selector: {app: web}\n  replicas: 3\n";
        assert_eq!(kv_exact_match(r, c), 1.0);
    }

    #[test]
    fn kv_exact_sees_value_differences() {
        assert_eq!(kv_exact_match("a: 1\n", "a: 2\n"), 0.0);
    }

    #[test]
    fn kv_exact_rejects_invalid_candidate() {
        assert_eq!(kv_exact_match("a: 1\n", "a: [1,\n"), 0.0);
    }

    #[test]
    fn kv_exact_multi_document() {
        let r = "a: 1\n---\nb: 2\n";
        assert_eq!(kv_exact_match(r, "a: 1\n---\nb: 2\n"), 1.0);
        assert_eq!(kv_exact_match(r, "b: 2\n---\na: 1\n"), 0.0);
        assert_eq!(kv_exact_match(r, "a: 1\n"), 0.0);
    }

    #[test]
    fn wildcard_uses_labels() {
        let r = "image: ubuntu:22.04 # v in ['20.04', '22.04']\nname: x # *\n";
        assert_eq!(
            kv_wildcard_match(r, "image: ubuntu:20.04\nname: whatever\n"),
            1.0
        );
        assert!(kv_wildcard_match(r, "image: alpine\nname: whatever\n") < 1.0);
    }

    #[test]
    fn wildcard_partial_credit() {
        let r = "a: 1\nb: 2\nc: 3\nd: 4\n";
        let c = "a: 1\nb: 2\n";
        // 2 matched, union = 4 + 2 - 2 = 4.
        assert!((kv_wildcard_match(r, c) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wildcard_penalizes_extra_docs() {
        let r = "a: 1\n";
        let c = "a: 1\n---\nb: 2\n";
        assert!(kv_wildcard_match(r, c) < 1.0);
    }

    #[test]
    fn wildcard_invalid_candidate_is_zero() {
        assert_eq!(kv_wildcard_match("a: 1\n", "not: [valid\n"), 0.0);
    }

    #[test]
    fn wildcard_empty_candidate_is_zero() {
        assert_eq!(kv_wildcard_match("a: 1\n", ""), 0.0);
    }
}
