//! YAML-aware metrics (§3.2): key-value exact match and key-value wildcard
//! match. Both load documents into order-insensitive structures instead of
//! comparing text, so cosmetic reordering does not hurt the score.

use yamlkit::{ArenaDoc, PreparedDoc, Yaml};

/// Key-value exact match: 1 when both texts parse as YAML and every
/// document compares equal as an (unordered) dictionary, else 0.
///
/// # Examples
///
/// ```
/// let reference = "a: 1\nb: 2\n";
/// let reordered = "b: 2\na: 1\n";
/// assert_eq!(cescore::kv_exact_match(reference, reordered), 1.0);
/// assert_eq!(cescore::kv_exact_match(reference, "a: 1\n"), 0.0);
/// ```
pub fn kv_exact_match(reference: &str, candidate: &str) -> f64 {
    let ref_doc = ArenaDoc::parse(reference);
    if ref_doc.error().is_some() {
        return 0.0;
    }
    let cand_doc = ArenaDoc::parse(candidate);
    if cand_doc.error().is_some() {
        return 0.0;
    }
    if ref_doc.doc_count() == 0 || ref_doc.doc_count() != cand_doc.doc_count() {
        return 0.0;
    }
    let ref_docs = ref_doc.materialize_values();
    let cand_docs = cand_doc.materialize_values();
    let all_equal = ref_docs
        .iter()
        .zip(&cand_docs)
        .all(|(r, c)| r.eq_unordered(c));
    if all_equal {
        1.0
    } else {
        0.0
    }
}

/// Key-value wildcard match: IoU of matched leaves between the labeled
/// reference and the candidate (0 when the candidate is not valid YAML).
///
/// Multi-document streams pair documents by index; leaves of unpaired
/// documents count toward the union only.
///
/// # Examples
///
/// ```
/// let reference = "metadata:\n  name: web # *\nport: 80\n";
/// let candidate = "metadata:\n  name: anything\nport: 80\n";
/// assert_eq!(cescore::kv_wildcard_match(reference, candidate), 1.0);
/// ```
pub fn kv_wildcard_match(reference: &str, candidate: &str) -> f64 {
    // Match trees read the reference's arena directly (no boxed `Node`
    // trees), and the candidate's leaf count comes off its arena walk.
    let reference = PreparedDoc::new(reference);
    if !reference.parses() {
        return 0.0;
    }
    let cand_doc = ArenaDoc::parse(candidate);
    if cand_doc.error().is_some() {
        return 0.0;
    }
    let trees = reference.match_trees();
    if trees.is_empty() {
        return 0.0;
    }
    let cand_values: Vec<Yaml> = cand_doc.materialize_values();
    let cand_leaves = cand_doc.leaf_count();
    let mut matched = 0usize;
    let mut ref_leaves = 0usize;
    for (i, tree) in trees.iter().enumerate() {
        ref_leaves += tree.leaf_count();
        if let Some(cand) = cand_values.get(i) {
            matched += tree.matched_leaves(cand);
        }
    }
    let union = ref_leaves + cand_leaves - matched;
    if union == 0 {
        1.0
    } else {
        matched as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_exact_ignores_order_and_format() {
        let r = "spec:\n  replicas: 3\n  selector:\n    app: web\n";
        let c = "spec:\n  selector: {app: web}\n  replicas: 3\n";
        assert_eq!(kv_exact_match(r, c), 1.0);
    }

    #[test]
    fn kv_exact_sees_value_differences() {
        assert_eq!(kv_exact_match("a: 1\n", "a: 2\n"), 0.0);
    }

    #[test]
    fn kv_exact_rejects_invalid_candidate() {
        assert_eq!(kv_exact_match("a: 1\n", "a: [1,\n"), 0.0);
    }

    #[test]
    fn kv_exact_multi_document() {
        let r = "a: 1\n---\nb: 2\n";
        assert_eq!(kv_exact_match(r, "a: 1\n---\nb: 2\n"), 1.0);
        assert_eq!(kv_exact_match(r, "b: 2\n---\na: 1\n"), 0.0);
        assert_eq!(kv_exact_match(r, "a: 1\n"), 0.0);
    }

    #[test]
    fn wildcard_uses_labels() {
        let r = "image: ubuntu:22.04 # v in ['20.04', '22.04']\nname: x # *\n";
        assert_eq!(
            kv_wildcard_match(r, "image: ubuntu:20.04\nname: whatever\n"),
            1.0
        );
        assert!(kv_wildcard_match(r, "image: alpine\nname: whatever\n") < 1.0);
    }

    #[test]
    fn wildcard_partial_credit() {
        let r = "a: 1\nb: 2\nc: 3\nd: 4\n";
        let c = "a: 1\nb: 2\n";
        // 2 matched, union = 4 + 2 - 2 = 4.
        assert!((kv_wildcard_match(r, c) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wildcard_penalizes_extra_docs() {
        let r = "a: 1\n";
        let c = "a: 1\n---\nb: 2\n";
        assert!(kv_wildcard_match(r, c) < 1.0);
    }

    #[test]
    fn wildcard_invalid_candidate_is_zero() {
        assert_eq!(kv_wildcard_match("a: 1\n", "not: [valid\n"), 0.0);
    }

    #[test]
    fn wildcard_empty_candidate_is_zero() {
        assert_eq!(kv_wildcard_match("a: 1\n", ""), 0.0);
    }
}
