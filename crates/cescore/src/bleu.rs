//! BLEU (Papineni et al., 2002) for YAML similarity, mirroring NLTK's
//! `sentence_bleu` with uniform 1–4-gram weights, the metric CloudEval-YAML
//! uses for its text-level score (§3.2).

use std::collections::HashMap;

/// Smoothing applied to zero n-gram precisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Smoothing {
    /// No smoothing: any zero n-gram precision yields a zero score
    /// (NLTK's default behaviour).
    None,
    /// NLTK smoothing method 1: replace zero counts with a small epsilon.
    #[default]
    Epsilon,
}

/// Tokenizes text for BLEU: whitespace-separated words, with YAML/JSON
/// punctuation split out as individual tokens so `name:` and `name` share a
/// unigram.
///
/// Owned convenience wrapper over [`tokenize_ref`]; prefer the borrowed
/// variant on hot paths — it slices the input instead of allocating a
/// `String` per token.
pub fn tokenize(text: &str) -> Vec<String> {
    tokenize_ref(text).into_iter().map(str::to_owned).collect()
}

/// Borrowed-token tokenizer: identical segmentation to [`tokenize`], but
/// every token is a slice of `text` — zero per-token allocations. This is
/// the fast path [`bleu`] (and therefore [`crate::score_pair`]) runs on.
///
/// # Examples
///
/// ```
/// assert_eq!(cescore::tokenize_ref("name: web"), vec!["name", ":", "web"]);
/// ```
pub fn tokenize_ref(text: &str) -> Vec<&str> {
    // Single-pass slice tokenizer, kept verbatim as the seed cost
    // profile (this is the cold-parse baseline the score_engine bench
    // measures the prepared path against). `yamlkit::doc::token_spans`
    // implements the same segmentation as byte spans for PreparedDoc's
    // cache; the `prepared_doc_views_match_direct_tokenization` proptest
    // pins the two together.
    let mut tokens = Vec::new();
    let mut start: Option<usize> = None;
    for (i, c) in text.char_indices() {
        match c {
            c if c.is_whitespace() => {
                if let Some(s) = start.take() {
                    tokens.push(&text[s..i]);
                }
            }
            ':' | ',' | '[' | ']' | '{' | '}' | '"' | '\'' | '-' | '=' => {
                if let Some(s) = start.take() {
                    tokens.push(&text[s..i]);
                }
                tokens.push(&text[i..i + c.len_utf8()]);
            }
            _ => {
                if start.is_none() {
                    start = Some(i);
                }
            }
        }
    }
    if let Some(s) = start {
        tokens.push(&text[s..]);
    }
    tokens
}

fn ngram_counts<'a>(tokens: &'a [&str], n: usize) -> HashMap<&'a [&'a str], usize> {
    let mut counts: HashMap<&[&str], usize> = HashMap::new();
    if tokens.len() >= n {
        for w in tokens.windows(n) {
            *counts.entry(w).or_insert(0) += 1;
        }
    }
    counts
}

/// Computes sentence-level BLEU of `candidate` against a single `reference`
/// with uniform weights over 1..=4-grams and the given smoothing.
///
/// The score is in `[0, 1]`; higher is better.
///
/// # Examples
///
/// ```
/// let r = "kind: Service\nmetadata:\n  name: web\n";
/// assert!((cescore::bleu(r, r, cescore::Smoothing::Epsilon) - 1.0).abs() < 1e-9);
/// assert!(cescore::bleu(r, "totally unrelated prose", cescore::Smoothing::Epsilon) < 0.1);
/// ```
pub fn bleu(reference: &str, candidate: &str, smoothing: Smoothing) -> f64 {
    let ref_tokens = tokenize_ref(reference);
    let cand_tokens = tokenize_ref(candidate);
    bleu_tokens_ref(&ref_tokens, &cand_tokens, smoothing)
}

/// BLEU over pre-tokenized owned sequences. Kept for compatibility with
/// callers that hold `Vec<String>` tokens; forwards to
/// [`bleu_tokens_ref`] through a single borrowed-token buffer shared by
/// both sides.
pub fn bleu_tokens(reference: &[String], candidate: &[String], smoothing: Smoothing) -> f64 {
    let borrowed: Vec<&str> = reference
        .iter()
        .chain(candidate)
        .map(String::as_str)
        .collect();
    let (reference, candidate) = borrowed.split_at(reference.len());
    bleu_tokens_ref(reference, candidate, smoothing)
}

/// BLEU over borrowed token sequences (the allocation-free hot path).
pub fn bleu_tokens_ref(reference: &[&str], candidate: &[&str], smoothing: Smoothing) -> f64 {
    if candidate.is_empty() || reference.is_empty() {
        return 0.0;
    }
    const MAX_N: usize = 4;
    const EPS: f64 = 0.1;
    // Orders the reference cannot produce are skipped and the remaining
    // weights renormalized, so short-but-correct answers can still reach
    // BLEU 1.0 (matching how NLTK users evaluate short sequences).
    let effective_n = MAX_N.min(reference.len());
    let mut log_precisions = Vec::with_capacity(effective_n);
    for n in 1..=effective_n {
        let cand_counts = ngram_counts(candidate, n);
        let ref_counts = ngram_counts(reference, n);
        let total: usize = cand_counts.values().sum();
        if total == 0 {
            // Candidate shorter than n, reference is not.
            match smoothing {
                Smoothing::None => return 0.0,
                Smoothing::Epsilon => {
                    log_precisions.push(EPS.ln());
                    continue;
                }
            }
        }
        let clipped: usize = cand_counts
            .iter()
            .map(|(gram, &count)| count.min(ref_counts.get(gram).copied().unwrap_or(0)))
            .sum();
        let p = if clipped == 0 {
            match smoothing {
                Smoothing::None => return 0.0,
                Smoothing::Epsilon => EPS / total as f64,
            }
        } else {
            clipped as f64 / total as f64
        };
        log_precisions.push(p.ln());
    }
    if log_precisions.is_empty() {
        return 0.0;
    }
    let mean_log = log_precisions.iter().sum::<f64>() / log_precisions.len() as f64;
    let bp = brevity_penalty(reference.len(), candidate.len());
    bp * mean_log.exp()
}

/// NLTK's brevity penalty, shared with the symbol-interned kernel in
/// [`crate::kernel`] so both paths run the identical float expression.
pub(crate) fn brevity_penalty(ref_len: usize, cand_len: usize) -> f64 {
    if cand_len >= ref_len {
        1.0
    } else if cand_len == 0 {
        0.0
    } else {
        (1.0 - ref_len as f64 / cand_len as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_text_scores_one() {
        let t = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n";
        assert!((bleu(t, t, Smoothing::Epsilon) - 1.0).abs() < 1e-9);
        assert!((bleu(t, t, Smoothing::None) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_text_scores_zero_without_smoothing() {
        assert_eq!(
            bleu("aaa bbb ccc ddd", "eee fff ggg hhh", Smoothing::None),
            0.0
        );
    }

    #[test]
    fn partial_overlap_is_between() {
        let r = "kind: Service\nmetadata:\n  name: web\nspec:\n  port: 80\n";
        let c = "kind: Service\nmetadata:\n  name: other\nspec:\n  port: 80\n";
        let s = bleu(r, c, Smoothing::Epsilon);
        assert!(s > 0.3 && s < 1.0, "score {s}");
    }

    #[test]
    fn brevity_penalty_punishes_short_candidates() {
        let r = "a b c d e f g h i j k l";
        let short = "a b c d";
        let full = "a b c d e f g h i j k l";
        assert!(bleu(r, short, Smoothing::Epsilon) < bleu(r, full, Smoothing::Epsilon));
    }

    #[test]
    fn empty_candidate_scores_zero() {
        assert_eq!(bleu("a b c", "", Smoothing::Epsilon), 0.0);
    }

    #[test]
    fn tokenizer_splits_yaml_punctuation() {
        assert_eq!(
            tokenize("name: web\nports: [80, 443]"),
            vec!["name", ":", "web", "ports", ":", "[", "80", ",", "443", "]"]
        );
    }

    #[test]
    fn borrowed_tokenizer_matches_owned() {
        for text in [
            "name: web\nports: [80, 443]",
            "",
            "  leading and trailing  ",
            "a-b=c{d}'e'\"f\"",
            "unicode: héllo wörld — dash",
            "block: |\n  multi line\n  body\n",
        ] {
            let owned = tokenize(text);
            let borrowed = tokenize_ref(text);
            assert_eq!(owned, borrowed, "tokenizers disagree on {text:?}");
            assert!(
                (bleu_tokens(&owned, &owned, Smoothing::Epsilon)
                    - bleu_tokens_ref(&borrowed, &borrowed, Smoothing::Epsilon))
                .abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn order_matters_for_higher_ngrams() {
        let r = "a b c d e f";
        let scrambled = "f e d c b a";
        let s = bleu(r, scrambled, Smoothing::Epsilon);
        assert!(s < 0.5, "scrambled should lose n-gram credit, got {s}");
    }

    #[test]
    fn score_bounded() {
        for (r, c) in [("a", "a a a a a"), ("x y", "y x"), ("k: v", "k: v\nk2: v2")] {
            let s = bleu(r, c, Smoothing::Epsilon);
            assert!((0.0..=1.0).contains(&s), "{s} for ({r}, {c})");
        }
    }
}
