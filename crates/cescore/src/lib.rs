//! # cescore
//!
//! The CloudEval-YAML performance-score calculation (§3.2 of the paper):
//! three score families over six metrics.
//!
//! | Family | Metrics |
//! |---|---|
//! | Text-level | [`bleu`], [`edit_distance_score`], [`exact_match`] |
//! | YAML-aware | [`kv_exact_match`], [`kv_wildcard_match`] |
//! | Function-level | unit tests (run by the `evalcluster` crate; recorded in [`Scores::unit_test`]) |
//!
//! [`score_pair`] computes all five static metrics for a generated/reference
//! YAML pair; [`Scores`] carries them plus the unit-test outcome, and
//! [`ScoreTable`] aggregates means across a dataset the way Table 4 reports
//! them.
//!
//! # Examples
//!
//! ```
//! let reference = "kind: Service\nmetadata:\n  name: web # *\nspec:\n  port: 80\n";
//! let generated = "kind: Service\nmetadata:\n  name: frontend\nspec:\n  port: 80\n";
//! let s = cescore::score_pair(reference, generated);
//! assert_eq!(s.kv_wildcard, 1.0);       // `# *` lets the name vary
//! assert_eq!(s.kv_exact, 0.0);          // dictionaries differ
//! assert!(s.bleu > 0.5);                // mostly the same text
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bleu;
mod editdist;
mod kernel;
mod prepared;
mod yamlaware;

pub use bleu::{bleu, bleu_tokens, bleu_tokens_ref, tokenize, tokenize_ref, Smoothing};
pub use editdist::{
    edit_distance_score, edit_distance_score_lines, line_edit_distance, line_edit_distance_lines,
};
pub use kernel::{
    bleu_kernel, edit_distance_kernel, edit_distance_score_kernel, RefLineIndex, RefNgrams,
    ScoreScratch,
};
pub use prepared::{
    score_pair_prepared, score_pair_prepared_legacy, score_pair_prepared_with, PreparedRef,
    RefCache, ScoreIssue,
};
pub use yamlaware::{kv_exact_match, kv_wildcard_match};
pub use yamlkit::PreparedDoc;

use serde::{Deserialize, Serialize};

/// Exact match (§3.2): 1 only when the generated text equals the reference
/// after trailing-whitespace normalization, else 0.
///
/// # Examples
///
/// ```
/// assert_eq!(cescore::exact_match("a: 1\n", "a: 1"), 1.0);
/// assert_eq!(cescore::exact_match("a: 1\n", "a: 2\n"), 0.0);
/// ```
pub fn exact_match(reference: &str, candidate: &str) -> f64 {
    if normalized_eq(reference, candidate) {
        1.0
    } else {
        0.0
    }
}

/// Whether two texts are equal after exact-match normalization (per-line
/// trailing whitespace stripped, trailing empty-line run dropped).
/// Allocation-free: compares trimmed line tables directly instead of
/// materializing normalized strings.
pub fn normalized_eq(a: &str, b: &str) -> bool {
    fn trimmed(text: &str) -> Vec<&str> {
        let mut lines: Vec<&str> = text.lines().map(str::trim_end).collect();
        while lines.last().is_some_and(|l| l.is_empty()) {
            lines.pop();
        }
        lines
    }
    trimmed(a) == trimmed(b)
}

/// All six CloudEval-YAML metrics for one generated answer.
///
/// `unit_test` is `0.0` until the function-level evaluation runs; the five
/// static metrics are filled by [`score_pair`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Scores {
    /// BLEU similarity, `[0, 1]`.
    pub bleu: f64,
    /// Line edit-distance score, `[0, 1]`.
    pub edit_distance: f64,
    /// Strict textual equality, `{0, 1}`.
    pub exact_match: f64,
    /// Order-insensitive dictionary equality, `{0, 1}`.
    pub kv_exact: f64,
    /// Label-aware leaf IoU, `[0, 1]`.
    pub kv_wildcard: f64,
    /// Unit-test outcome, `{0, 1}` (function-level score).
    pub unit_test: f64,
}

impl Scores {
    /// The five static metric values in Table 4 column order
    /// (BLEU, Edit Dist., Exact Match, Key-value Exact, Key-value Wildcard).
    pub fn static_metrics(&self) -> [f64; 5] {
        [
            self.bleu,
            self.edit_distance,
            self.exact_match,
            self.kv_exact,
            self.kv_wildcard,
        ]
    }
}

/// Names of the six metrics in Table 4 column order.
pub const METRIC_NAMES: [&str; 6] = [
    "bleu",
    "edit_distance",
    "exact_match",
    "kv_exact",
    "kv_wildcard",
    "unit_test",
];

/// Computes the five static metrics for a generated answer against the
/// labeled reference. Label comments are stripped from the reference before
/// text-level comparison (they are instructions to the grader, not part of
/// the solution), and both sides are canonicalized when they parse so that
/// formatting noise does not dominate text-level scores.
///
/// Thin wrapper over [`score_pair_prepared`]: both sides are prepared
/// (parsed once) and scored from cached views. Callers scoring the same
/// reference repeatedly should hold a [`PreparedRef`] (via [`RefCache`])
/// and call [`score_pair_prepared`] directly.
pub fn score_pair(labeled_reference: &str, candidate: &str) -> Scores {
    score_pair_prepared(
        &PreparedRef::new(labeled_reference),
        &PreparedDoc::new(candidate),
    )
}

/// The pre-refactor text-path score calculation, parsing both sides on
/// every call: the reference is stripped (parse + emit), then kv-exact
/// re-parses the cleaned reference and the candidate, and kv-wildcard
/// re-parses the labeled reference and the candidate again.
///
/// Kept verbatim as the baseline [`score_pair`] must stay score-identical
/// to (the `proptest_metrics` suite proves it on arbitrary YAML) and as
/// the cold-parse side of the `score_engine` benchmark group and the
/// `repro pipeline --prepared off` A/B path.
pub fn score_pair_text(labeled_reference: &str, candidate: &str) -> Scores {
    let reference_clean = strip_label_comments(labeled_reference);
    // Text-level metrics compare the cleaned reference against raw output.
    let bleu_score = bleu(&reference_clean, candidate, Smoothing::Epsilon);
    let edit = edit_distance_score(&reference_clean, candidate);
    let exact = exact_match(&reference_clean, candidate);
    Scores {
        bleu: bleu_score,
        edit_distance: edit,
        exact_match: exact,
        kv_exact: kv_exact_match(&reference_clean, candidate),
        kv_wildcard: kv_wildcard_match(labeled_reference, candidate),
        unit_test: 0.0,
    }
}

/// Removes `# ...` trailing comments (the reference labels) from YAML text,
/// leaving block-scalar bodies untouched.
pub fn strip_label_comments(labeled: &str) -> String {
    match yamlkit::parse(labeled) {
        Ok(docs) => {
            let values: Vec<yamlkit::Yaml> = docs.iter().map(yamlkit::Node::to_value).collect();
            yamlkit::emit_all(&values)
        }
        // Not parseable: fall back to raw text so text metrics still work.
        Err(_) => labeled.to_owned(),
    }
}

/// Mean of each metric over a collection of [`Scores`] — one row of
/// Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ScoreTable {
    /// Mean scores across the dataset.
    pub mean: Scores,
    /// Number of aggregated problems.
    pub count: usize,
}

impl ScoreTable {
    /// Aggregates per-problem scores into dataset means.
    pub fn aggregate<'a, I: IntoIterator<Item = &'a Scores>>(scores: I) -> ScoreTable {
        let mut sum = Scores::default();
        let mut count = 0usize;
        for s in scores {
            sum.bleu += s.bleu;
            sum.edit_distance += s.edit_distance;
            sum.exact_match += s.exact_match;
            sum.kv_exact += s.kv_exact;
            sum.kv_wildcard += s.kv_wildcard;
            sum.unit_test += s.unit_test;
            count += 1;
        }
        if count > 0 {
            let n = count as f64;
            sum.bleu /= n;
            sum.edit_distance /= n;
            sum.exact_match /= n;
            sum.kv_exact /= n;
            sum.kv_wildcard /= n;
            sum.unit_test /= n;
        }
        ScoreTable { mean: sum, count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REF: &str = "\
apiVersion: v1
kind: Service
metadata:
  name: nginx-service # *
spec:
  selector:
    app: nginx
  ports:
  - name: http
    port: 80
    targetPort: 80
  type: LoadBalancer
";

    #[test]
    fn perfect_answer_maxes_static_metrics() {
        let perfect = strip_label_comments(REF);
        let s = score_pair(REF, &perfect);
        assert!((s.bleu - 1.0).abs() < 1e-9);
        assert_eq!(s.edit_distance, 1.0);
        assert_eq!(s.exact_match, 1.0);
        assert_eq!(s.kv_exact, 1.0);
        assert_eq!(s.kv_wildcard, 1.0);
    }

    #[test]
    fn renamed_service_passes_wildcard_only() {
        let cand = strip_label_comments(REF).replace("nginx-service", "my-svc");
        let s = score_pair(REF, &cand);
        assert_eq!(s.kv_wildcard, 1.0);
        assert_eq!(s.kv_exact, 0.0);
        assert_eq!(s.exact_match, 0.0);
        assert!(s.bleu < 1.0);
    }

    #[test]
    fn reordered_keys_pass_kv_not_exact() {
        let cand = "\
kind: Service
apiVersion: v1
metadata:
  name: nginx-service
spec:
  type: LoadBalancer
  selector:
    app: nginx
  ports:
  - name: http
    port: 80
    targetPort: 80
";
        let s = score_pair(REF, cand);
        assert_eq!(s.kv_exact, 1.0);
        assert_eq!(s.kv_wildcard, 1.0);
        assert_eq!(s.exact_match, 0.0);
    }

    #[test]
    fn prose_answer_scores_near_zero_on_yaml_aware() {
        let s = score_pair(REF, "Sure! Here is what you should do: create a service.");
        assert_eq!(s.kv_exact, 0.0);
        assert_eq!(s.kv_wildcard, 0.0);
        assert!(s.bleu < 0.2);
    }

    #[test]
    fn strip_label_comments_removes_labels() {
        let cleaned = strip_label_comments("a: 1 # *\nb: 2 # v in [1,2]\n");
        assert_eq!(cleaned, "a: 1\nb: 2\n");
    }

    #[test]
    fn exact_match_ignores_trailing_whitespace() {
        assert_eq!(exact_match("a: 1  \nb: 2\n\n\n", "a: 1\nb: 2"), 1.0);
    }

    #[test]
    fn aggregate_means() {
        let scores = [
            Scores {
                bleu: 1.0,
                unit_test: 1.0,
                ..Default::default()
            },
            Scores {
                bleu: 0.0,
                unit_test: 0.0,
                ..Default::default()
            },
        ];
        let t = ScoreTable::aggregate(scores.iter());
        assert_eq!(t.count, 2);
        assert!((t.mean.bleu - 0.5).abs() < 1e-9);
        assert!((t.mean.unit_test - 0.5).abs() < 1e-9);
    }

    #[test]
    fn aggregate_empty_is_zero() {
        let t = ScoreTable::aggregate([].iter());
        assert_eq!(t.count, 0);
        assert_eq!(t.mean.bleu, 0.0);
    }
}
