//! Equivalence proofs for the symbol-interned scoring kernels: the
//! kernel path (`score_pair_prepared` / `bleu_kernel` /
//! `edit_distance_kernel`) must be **bit-identical** to the kept legacy
//! kernels (`score_pair_prepared_legacy`, `bleu_tokens_ref`, the
//! string-comparing LCS) and to the pre-refactor `score_pair_text` — on
//! arbitrary valid YAML, malformed YAML, prose, and the pinned
//! adversarial shapes (10k-line documents, all-identical lines, fully
//! disjoint vocabularies).

use std::time::Instant;

use proptest::prelude::*;

use cescore::{
    bleu_kernel, edit_distance_kernel, score_pair_prepared_legacy, score_pair_prepared_with,
    PreparedDoc, PreparedRef, RefLineIndex, RefNgrams, ScoreScratch, Smoothing,
};

fn arb_yaml_text() -> impl Strategy<Value = String> {
    // Small random mappings emitted through yamlkit guarantee valid YAML.
    prop::collection::vec(("[a-z]{1,6}", "[a-z0-9:/.-]{0,8}"), 1..6).prop_map(|pairs| {
        let mut seen = std::collections::HashSet::new();
        let map = yamlkit::Yaml::Map(
            pairs
                .into_iter()
                .filter(|(k, _)| seen.insert(k.clone()))
                .map(|(k, v)| (k, yamlkit::Yaml::Str(v)))
                .collect(),
        );
        yamlkit::emit(&map)
    })
}

/// Arbitrary model-output-shaped text: sometimes valid YAML, sometimes
/// prose, sometimes broken flow collections — the full domain the
/// kernels must be total (and exact) over.
fn arb_any_text() -> impl Strategy<Value = String> {
    prop_oneof![
        arb_yaml_text(),
        "[a-zA-Z0-9 :#\\n\\[\\]{},'\"-]{0,80}".prop_map(|s| s),
        // Guaranteed-broken YAML: unclosed flow sequence.
        "[a-z]{1,6}".prop_map(|k| format!("{k}: [1,\n")),
        Just(String::new()),
    ]
}

/// Asserts every static metric of the kernel path equals the legacy
/// prepared path and the pre-refactor text path, bit for bit.
fn assert_paths_identical(reference: &str, candidate: &str, scratch: &mut ScoreScratch) {
    let prepared = PreparedRef::new(reference);
    let doc = PreparedDoc::new(candidate);
    let kernel = score_pair_prepared_with(&prepared, &doc, scratch);
    let legacy = score_pair_prepared_legacy(&prepared, &doc);
    let text = cescore::score_pair_text(reference, candidate);
    assert_eq!(
        kernel, legacy,
        "kernel != legacy on ref {reference:?} cand {candidate:?}"
    );
    assert_eq!(
        kernel, text,
        "kernel != text path on ref {reference:?} cand {candidate:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// THE kernel contract: on arbitrary reference/candidate pairs —
    /// valid, malformed, prose, empty — the symbol-interned path scores
    /// bit-identically to both oracles, through one continuously reused
    /// scratch (so purity of scratch reuse is proven en passant).
    #[test]
    fn kernel_scores_bit_identical_to_both_oracles(
        r in arb_any_text(),
        cands in prop::collection::vec(arb_any_text(), 1..4),
    ) {
        let mut scratch = ScoreScratch::new();
        for c in &cands {
            assert_paths_identical(&r, c, &mut scratch);
        }
    }

    /// The raw BLEU kernel against the raw legacy token function, bit
    /// for bit, for both smoothing modes.
    #[test]
    fn bleu_kernel_matches_token_oracle(r in arb_any_text(), c in arb_any_text()) {
        let rd = PreparedDoc::new(r.as_str());
        let cd = PreparedDoc::new(c.as_str());
        let ngrams = RefNgrams::build(rd.sym_stream());
        let mut scratch = ScoreScratch::new();
        for smoothing in [Smoothing::Epsilon, Smoothing::None] {
            let kernel = bleu_kernel(rd.sym_stream(), &ngrams, cd.sym_stream(), &mut scratch, smoothing);
            let legacy = cescore::bleu_tokens_ref(&rd.tokens(), &cd.tokens(), smoothing);
            prop_assert_eq!(
                kernel.to_bits(),
                legacy.to_bits(),
                "bleu diverged ({:?}): ref {:?} cand {:?}",
                smoothing, r, c
            );
        }
    }

    /// The raw edit-distance kernel against the O(n·m) LCS oracle.
    #[test]
    fn edit_kernel_matches_dp_oracle(r in arb_any_text(), c in arb_any_text()) {
        let rd = PreparedDoc::new(r.as_str());
        let cd = PreparedDoc::new(c.as_str());
        let index = RefLineIndex::build(&rd.lines());
        let mut scratch = ScoreScratch::new();
        let kernel = edit_distance_kernel(&index, &cd.lines(), cd.line_hashes(), &mut scratch);
        let legacy = cescore::line_edit_distance_lines(&rd.lines(), &cd.lines());
        prop_assert_eq!(kernel, legacy, "edit distance diverged: ref {:?} cand {:?}", r, c);
    }
}

/// All-identical lines: the match-mask row for the single distinct line
/// id is all ones, the worst case for the carry chain. Also a dense-BLEU
/// stress (every window matches).
#[test]
fn adversarial_all_identical_lines() {
    let mut scratch = ScoreScratch::new();
    let reference = "same: line\n".repeat(300);
    for cand_len in [0usize, 1, 64, 65, 128, 299, 300, 301, 400] {
        let candidate = "same: line\n".repeat(cand_len);
        assert_paths_identical(&reference, &candidate, &mut scratch);
    }
}

/// Fully disjoint vocabularies: every candidate token misses the
/// reference interner (the `UNSEEN` sentinel path), every line mask is
/// empty, and BLEU exercises the epsilon-smoothing branch throughout.
#[test]
fn adversarial_fully_disjoint_token_sets() {
    let mut scratch = ScoreScratch::new();
    let reference: String = (0..200).map(|i| format!("ref{i}: alpha{i}\n")).collect();
    let candidate: String = (0..250).map(|i| format!("cand{i} beta{i}\n")).collect();
    assert_paths_identical(&reference, &candidate, &mut scratch);
    assert_paths_identical(&candidate, &reference, &mut scratch);
}

/// 10k-line documents with a realistic mutation pattern. The O(n·m)
/// string-comparing oracle would take ~10^8 cell compares in a debug
/// build, so this case proves the kernels against *known closed-form*
/// answers instead, plus a wall-clock sanity bound: the whole scoring
/// run (two 10k-line pairs) must finish in seconds, which the legacy
/// path could not.
#[test]
fn adversarial_10k_line_documents_with_wall_clock_bound() {
    let n = 10_000usize;
    let reference: String = (0..n).map(|i| format!("key{i}: value{i}\n")).collect();
    // Mutate every 100th line: 100 changed lines → distance 200.
    let mutated: String = (0..n)
        .map(|i| {
            if i % 100 == 0 {
                format!("key{i}: CHANGED\n")
            } else {
                format!("key{i}: value{i}\n")
            }
        })
        .collect();
    let started = Instant::now();
    let rd = PreparedDoc::new(reference.as_str());
    let index = RefLineIndex::build(&rd.lines());
    let ngrams = RefNgrams::build(rd.sym_stream());
    let mut scratch = ScoreScratch::new();

    // Identity: distance 0, BLEU exactly 1.
    let self_doc = PreparedDoc::new(reference.as_str());
    assert_eq!(
        edit_distance_kernel(
            &index,
            &self_doc.lines(),
            self_doc.line_hashes(),
            &mut scratch
        ),
        0
    );
    let self_bleu = bleu_kernel(
        rd.sym_stream(),
        &ngrams,
        self_doc.sym_stream(),
        &mut scratch,
        Smoothing::Epsilon,
    );
    assert!((self_bleu - 1.0).abs() < 1e-9, "self-BLEU {self_bleu}");

    // Every 100th line changed: the untouched 9900 lines are the LCS
    // (100 substitutions = 100 deletions + 100 insertions).
    let mut_doc = PreparedDoc::new(mutated.as_str());
    assert_eq!(
        edit_distance_kernel(
            &index,
            &mut_doc.lines(),
            mut_doc.line_hashes(),
            &mut scratch
        ),
        200
    );
    let mut_bleu = bleu_kernel(
        rd.sym_stream(),
        &ngrams,
        mut_doc.sym_stream(),
        &mut scratch,
        Smoothing::Epsilon,
    );
    assert!(
        mut_bleu > 0.9 && mut_bleu < 1.0,
        "1% line churn should stay near 1: {mut_bleu}"
    );

    // Reversed line order: same line multiset, so the edit distance is
    // bounded by 2·(n-1) and BLEU's unigram precision stays perfect.
    let reversed: String = (0..n)
        .rev()
        .map(|i| format!("key{i}: value{i}\n"))
        .collect();
    let rev_doc = PreparedDoc::new(reversed.as_str());
    let rev_dist = edit_distance_kernel(
        &index,
        &rev_doc.lines(),
        rev_doc.line_hashes(),
        &mut scratch,
    );
    // LCS of a sequence of distinct lines vs its reversal is exactly 1.
    assert_eq!(rev_dist, 2 * (n - 1));

    let elapsed = started.elapsed();
    assert!(
        elapsed.as_secs() < 30,
        "10k-line adversarial scoring took {elapsed:?} — kernel perf regressed"
    );
}

/// The 10k shape cross-checked against the legacy oracle on a prefix
/// small enough for the O(n·m) DP (1k lines), so the closed-form
/// answers above are themselves anchored to the oracle.
#[test]
fn adversarial_1k_prefix_cross_checked_against_oracle() {
    let n = 1_000usize;
    let reference: String = (0..n).map(|i| format!("key{i}: value{i}\n")).collect();
    let mutated: String = (0..n)
        .map(|i| {
            if i % 100 == 0 {
                format!("key{i}: CHANGED\n")
            } else {
                format!("key{i}: value{i}\n")
            }
        })
        .collect();
    let reversed: String = (0..n)
        .rev()
        .map(|i| format!("key{i}: value{i}\n"))
        .collect();
    let mut scratch = ScoreScratch::new();
    for candidate in [&reference, &mutated, &reversed] {
        assert_paths_identical(&reference, candidate, &mut scratch);
    }
}
