//! Property tests for the scoring metrics: boundedness, reflexivity, and
//! the ordering relationships the paper's evaluation relies on.

use proptest::prelude::*;

fn arb_yaml_text() -> impl Strategy<Value = String> {
    // Small random mappings emitted through yamlkit guarantee valid YAML.
    prop::collection::vec(("[a-z]{1,6}", "[a-z0-9:/.-]{0,8}"), 1..6).prop_map(|pairs| {
        let mut seen = std::collections::HashSet::new();
        let map = yamlkit::Yaml::Map(
            pairs
                .into_iter()
                .filter(|(k, _)| seen.insert(k.clone()))
                .map(|(k, v)| (k, yamlkit::Yaml::Str(v)))
                .collect(),
        );
        yamlkit::emit(&map)
    })
}

/// Arbitrary model-output-shaped text: sometimes valid YAML, sometimes
/// prose, sometimes broken flow collections — the full domain the scorer
/// must be total over.
fn arb_any_text() -> impl Strategy<Value = String> {
    prop_oneof![
        arb_yaml_text(),
        "[a-zA-Z0-9 :#\\n\\[\\]{},'\"-]{0,80}".prop_map(|s| s),
        // Guaranteed-broken YAML: unclosed flow sequence.
        "[a-z]{1,6}".prop_map(|k| format!("{k}: [1,\n")),
        Just(String::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// THE parse-once contract: `score_pair` (the prepared-path wrapper)
    /// is score-identical to the pre-refactor text path on arbitrary
    /// reference/candidate pairs — valid YAML, invalid YAML, prose and
    /// empty text alike. Every metric must agree bit-for-bit.
    #[test]
    fn prepared_path_is_score_identical_to_text_path(
        r in arb_any_text(),
        c in arb_any_text(),
    ) {
        let prepared = cescore::score_pair(&r, &c);
        let text = cescore::score_pair_text(&r, &c);
        prop_assert_eq!(prepared, text, "paths diverged on ref {:?} cand {:?}", r, c);
    }

    /// Same contract through the explicit prepared API, with the
    /// reference and candidate each prepared once and reused — reuse
    /// must not change any score.
    #[test]
    fn reused_prepared_views_stay_identical(
        r in arb_any_text(),
        cands in prop::collection::vec(arb_any_text(), 1..4),
    ) {
        let reference = cescore::PreparedRef::new(&r);
        for c in &cands {
            let doc = cescore::PreparedDoc::new(c.as_str());
            let once = cescore::score_pair_prepared(&reference, &doc);
            prop_assert_eq!(once, cescore::score_pair_text(&r, c));
            // Scoring the same shared views again is pure.
            prop_assert_eq!(once, cescore::score_pair_prepared(&reference, &doc));
        }
    }

    /// A reference that fails to parse surfaces a typed issue, and only
    /// then (a parseable reference never does).
    #[test]
    fn score_issue_tracks_reference_parseability(r in arb_any_text()) {
        let reference = cescore::PreparedRef::new(&r);
        prop_assert_eq!(reference.issue().is_some(), yamlkit::parse(&r).is_err());
    }

    /// The cached token stream and line table inside PreparedDoc agree
    /// with the direct tokenizers on arbitrary text.
    #[test]
    fn prepared_doc_views_match_direct_tokenization(t in arb_any_text()) {
        let doc = cescore::PreparedDoc::new(t.as_str());
        prop_assert_eq!(doc.tokens(), cescore::tokenize_ref(&t));
        prop_assert_eq!(doc.lines(), t.lines().collect::<Vec<_>>());
    }

    #[test]
    fn all_metrics_bounded(r in arb_yaml_text(), c in arb_yaml_text()) {
        let s = cescore::score_pair(&r, &c);
        for (name, v) in cescore::METRIC_NAMES.iter().zip(s.static_metrics().iter().chain([&s.unit_test])) {
            prop_assert!((0.0..=1.0).contains(v), "{name} = {v} out of bounds");
        }
    }

    #[test]
    fn self_score_is_perfect(r in arb_yaml_text()) {
        let s = cescore::score_pair(&r, &r);
        prop_assert!((s.bleu - 1.0).abs() < 1e-9);
        prop_assert_eq!(s.edit_distance, 1.0);
        prop_assert_eq!(s.exact_match, 1.0);
        prop_assert_eq!(s.kv_exact, 1.0);
        prop_assert_eq!(s.kv_wildcard, 1.0);
    }

    /// Exact match implies every other static metric is perfect.
    #[test]
    fn exact_match_dominates(r in arb_yaml_text(), c in arb_yaml_text()) {
        let s = cescore::score_pair(&r, &c);
        if s.exact_match == 1.0 {
            prop_assert_eq!(s.kv_exact, 1.0);
            prop_assert_eq!(s.kv_wildcard, 1.0);
            prop_assert_eq!(s.edit_distance, 1.0);
        }
        // kv-exact implies wildcard-perfect on unlabeled references.
        if s.kv_exact == 1.0 {
            prop_assert!((s.kv_wildcard - 1.0).abs() < 1e-9);
        }
    }

    /// Appending junk to the candidate never raises kv-wildcard.
    #[test]
    fn extra_content_never_helps_wildcard(r in arb_yaml_text()) {
        let base = cescore::kv_wildcard_match(&r, &r);
        let bloated = format!("{r}zzz_extra_key_1: junk\nzzz_extra_key_2: junk\n");
        let worse = cescore::kv_wildcard_match(&r, &bloated);
        prop_assert!(worse <= base + 1e-12, "bloated {worse} > base {base}");
    }

    /// Individual metric functions stay in [0, 1] even on arbitrary
    /// non-YAML text (scorers must be total over model output).
    #[test]
    fn raw_metrics_bounded_on_arbitrary_text(
        r in "[a-zA-Z0-9 :#\\n-]{0,60}",
        c in "[a-zA-Z0-9 :#\\n-]{0,60}",
    ) {
        for v in [
            cescore::bleu(&r, &c, cescore::Smoothing::Epsilon),
            cescore::edit_distance_score(&r, &c),
            cescore::exact_match(&r, &c),
            cescore::kv_exact_match(&r, &c),
            cescore::kv_wildcard_match(&r, &c),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "metric {v} out of bounds");
        }
    }

    /// Identity: every text-level metric is perfect on (x, x), including
    /// for non-YAML text.
    #[test]
    fn text_metrics_identity(x in "[a-zA-Z0-9 :\\n-]{1,60}") {
        prop_assert!((cescore::bleu(&x, &x, cescore::Smoothing::Epsilon) - 1.0).abs() < 1e-9);
        prop_assert_eq!(cescore::edit_distance_score(&x, &x), 1.0);
        prop_assert_eq!(cescore::exact_match(&x, &x), 1.0);
    }

    /// Wildcard ⊇ exact: the wildcard metric accepts at least everything
    /// the exact metric accepts, on every generated pair.
    #[test]
    fn wildcard_dominates_exact(r in arb_yaml_text(), c in arb_yaml_text()) {
        let exact = cescore::kv_exact_match(&r, &c);
        let wildcard = cescore::kv_wildcard_match(&r, &c);
        prop_assert!(
            wildcard >= exact - 1e-12,
            "wildcard {wildcard} < exact {exact}"
        );
    }

    /// Relaxing a reference leaf to a wildcard label never lowers the
    /// wildcard score against any candidate (the match set only grows).
    #[test]
    fn wildcard_label_only_relaxes(r in arb_yaml_text(), c in arb_yaml_text(), pick in 0usize..8) {
        let lines: Vec<&str> = r.lines().collect();
        let idx = pick % lines.len().max(1);
        let labeled: Vec<String> = lines
            .iter()
            .enumerate()
            .map(|(i, l)| if i == idx { format!("{l} # *") } else { (*l).to_owned() })
            .collect();
        let labeled = labeled.join("\n") + "\n";
        let plain = cescore::kv_wildcard_match(&r, &c);
        let relaxed = cescore::kv_wildcard_match(&labeled, &c);
        prop_assert!(
            relaxed >= plain - 1e-12,
            "labeling lowered the score: {plain} -> {relaxed}\nref:\n{r}"
        );
        // And the labeled reference still fully matches the original
        // unlabeled document.
        prop_assert!((cescore::kv_wildcard_match(&labeled, &r) - 1.0).abs() < 1e-12);
    }

    /// Edit distance score decreases monotonically as more lines change.
    #[test]
    fn edit_distance_monotone_in_changes(r in arb_yaml_text()) {
        let lines: Vec<&str> = r.lines().collect();
        let mut prev = cescore::edit_distance_score(&r, &r);
        for k in 1..=lines.len() {
            let mutated: Vec<String> = lines
                .iter()
                .enumerate()
                .map(|(i, l)| if i < k { format!("CHANGED_{i}: x") } else { (*l).to_owned() })
                .collect();
            let score = cescore::edit_distance_score(&r, &mutated.join("\n"));
            prop_assert!(score <= prev + 1e-12);
            prev = score;
        }
    }
}
