//! Multi-sample generation (pass@k) and the unit-test predictor: the §4.2
//! and §4.4 studies on a dataset slice.
//!
//! ```text
//! cargo run --release --example model_report
//! ```

use std::sync::Arc;

use cloudeval::core::harness::{evaluate, EvalOptions};
use cloudeval::core::passk::pass_at_k;
use cloudeval::core::predict::{leave_one_model_out, shap_importance};
use cloudeval::core::tables;
use cloudeval::dataset::Dataset;
use cloudeval::llm::{ModelProfile, SimulatedModel};

fn main() {
    let dataset = Arc::new(Dataset::generate());
    let stride = 4;

    // --- pass@k (Figure 8) ------------------------------------------
    println!("== pass@k, stride {stride} ==");
    let mut curves = Vec::new();
    for name in ["gpt-3.5", "llama-2-70b-chat"] {
        let model = SimulatedModel::new(
            ModelProfile::by_name(name).expect("known model"),
            Arc::clone(&dataset),
        );
        curves.push(pass_at_k(&model, &dataset, 8, stride, 8));
    }
    println!("{}", tables::figure8(&curves));

    // --- unit-test predictor (Figure 9) ------------------------------
    println!("== unit-test predictor ==");
    let mut records = Vec::new();
    for name in ["gpt-4", "gpt-3.5", "llama-2-70b-chat", "llama-7b"] {
        let model = SimulatedModel::new(
            ModelProfile::by_name(name).expect("known model"),
            Arc::clone(&dataset),
        );
        records.extend(evaluate(
            &model,
            &dataset,
            &EvalOptions {
                stride,
                workers: 8,
                ..EvalOptions::default()
            },
        ));
    }
    let lomo = leave_one_model_out(&records);
    let shap = shap_importance(&records, 150);
    println!("{}", tables::figure9(&lomo, &shap));
}
