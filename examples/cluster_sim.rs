//! Drive the Kubernetes simulator interactively-style: apply manifests,
//! watch controllers reconcile, query with kubectl, probe the network —
//! and then reproduce Figure 5 with the evaluation-cluster simulation.
//!
//! ```text
//! cargo run --release --example cluster_sim
//! ```

use cloudeval::kube::{kubectl, Cluster};

fn kctl(cluster: &mut Cluster, line: &str, stdin: &str) -> String {
    let args: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
    let result = kubectl::run(cluster, &args, stdin, &|_| None);
    let mut out = format!("$ kubectl {line}\n");
    out.push_str(&result.stdout);
    out.push_str(&result.stderr);
    out
}

fn main() {
    let mut cluster = Cluster::new();

    let deployment = "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: 3
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      containers:
      - name: nginx
        image: nginx:latest
        ports:
        - containerPort: 80
";
    println!("{}", kctl(&mut cluster, "apply -f -", deployment));
    println!("{}", kctl(&mut cluster, "get pods", ""));
    println!("# ...advancing simulated time 10s (image pulls, readiness)...\n");
    cluster.advance(10_000);
    println!("{}", kctl(&mut cluster, "get pods", ""));
    println!(
        "{}",
        kctl(
            &mut cluster,
            "get deployment web -o jsonpath={.status.readyReplicas}",
            ""
        )
    );
    println!();

    let service = "\
apiVersion: v1
kind: Service
metadata:
  name: web-svc
spec:
  selector:
    app: web
  ports:
  - port: 80
  type: LoadBalancer
";
    println!("{}", kctl(&mut cluster, "apply -f -", service));
    cluster.advance(5_000);
    println!("{}", kctl(&mut cluster, "get svc", ""));

    let response = cloudeval::kube::net::curl(&cluster, "web-svc").expect("service reachable");
    println!(
        "$ curl web-svc\nHTTP {} {}\n",
        response.status, response.body
    );

    // Figure 5: the cloud evaluation platform's scaling behaviour.
    println!("== Figure 5: evaluation time over all 1011 problems ==");
    let rows = cloudeval::cluster::figure5(cloudeval::cluster::des::DEFAULT_OVERHEAD_S);
    println!("{}", cloudeval::core::tables::figure5(&rows));
}
