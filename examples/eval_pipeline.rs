//! Benchmark a pair of models on a dataset slice and print a mini
//! Table 4, a factor analysis and the failure-mode histogram.
//!
//! ```text
//! cargo run --release --example eval_pipeline
//! ```

use std::sync::Arc;

use cloudeval::core::analysis::{factor_analysis, failure_modes};
use cloudeval::core::harness::{evaluate, mean_scores, pass_count, EvalOptions};
use cloudeval::core::tables;
use cloudeval::dataset::Dataset;
use cloudeval::llm::{ModelProfile, SimulatedModel};

fn main() {
    let dataset = Arc::new(Dataset::generate());
    // Every 4th problem keeps the example fast (~85 problems/model).
    let options = EvalOptions {
        stride: 4,
        workers: 8,
        ..EvalOptions::default()
    };

    let mut rows = Vec::new();
    let mut all_records = Vec::new();
    for name in ["gpt-4", "llama-2-70b-chat"] {
        let model = SimulatedModel::new(
            ModelProfile::by_name(name).expect("known model"),
            Arc::clone(&dataset),
        );
        let records = evaluate(&model, &dataset, &options);
        println!(
            "{name}: {}/{} unit tests passed",
            pass_count(&records),
            records.len()
        );
        rows.push(tables::Table4Row {
            model: name.to_owned(),
            size_b: model.profile().size_b,
            open_source: model.profile().open_source,
            scores: mean_scores(&records),
        });
        all_records.extend(records);
    }

    println!("\n== Mini Table 4 (stride 4) ==");
    println!("{}", tables::table4(&rows));

    println!("== Factor analysis (Figure 6 / Table 9) ==");
    let factor_rows: Vec<_> = ["gpt-4", "llama-2-70b-chat"]
        .iter()
        .map(|m| factor_analysis(m, &all_records))
        .collect();
    println!("{}", tables::figure6(&factor_rows));

    println!("== Failure modes (Figure 7) ==");
    let failure_rows: Vec<_> = ["gpt-4", "llama-2-70b-chat"]
        .iter()
        .map(|m| ((*m).to_owned(), failure_modes(m, &all_records)))
        .collect();
    println!("{}", tables::figure7(&failure_rows));
}
