//! Quickstart: evaluate one model on one problem, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full CloudEval-YAML pipeline on a single problem: build the
//! prompt, query the model, post-process the response, compute all six
//! metrics, and run the unit test against the simulated cluster.

use std::sync::Arc;

use cloudeval::dataset::{Dataset, Variant};
use cloudeval::llm::{extract_yaml, GenParams, LanguageModel, ModelProfile, SimulatedModel};

fn main() {
    // 1. The dataset: 337 problems, deterministic generation.
    let dataset = Arc::new(Dataset::generate());
    let problem = dataset.get("pod-000").expect("problem exists");
    println!(
        "== Problem {} ({:?}) ==\n{}\n",
        problem.id, problem.category, problem.description
    );

    // 2. Prompt assembly (Appendix B template, zero-shot).
    let prompt =
        cloudeval::dataset::fewshot::build_prompt(&problem.prompt_body(Variant::Original), 0);

    // 3. Query a model. GPT-4 here is a calibrated simulation.
    let model = SimulatedModel::new(
        ModelProfile::by_name("gpt-4").expect("known model"),
        Arc::clone(&dataset),
    );
    let raw = model.generate(&prompt, &GenParams::default());
    println!("== Raw model response ==\n{raw}\n");

    // 4. Post-processing (§3.1): extract clean YAML.
    let yaml = extract_yaml(&raw);
    println!("== Extracted YAML ==\n{yaml}");

    // 5. Text-level + YAML-aware scores (§3.2).
    let scores = cloudeval::score::score_pair(&problem.labeled_reference, &yaml);
    println!("== Static scores ==");
    println!("  BLEU          {:.3}", scores.bleu);
    println!("  Edit distance {:.3}", scores.edit_distance);
    println!("  Exact match   {:.3}", scores.exact_match);
    println!("  KV exact      {:.3}", scores.kv_exact);
    println!("  KV wildcard   {:.3}", scores.kv_wildcard);

    // 6. Function-level score: run the unit test in a fresh simulated
    //    cluster (minikube stand-in).
    let outcome =
        cloudeval::shell::run_unit_test(&problem.unit_test, &yaml).expect("script interprets");
    let passed = outcome.combined.contains("unit_test_passed");
    println!("\n== Unit test ==\n{}", outcome.combined.trim_end());
    println!("\nunit test {}", if passed { "PASSED" } else { "FAILED" });
}
