//! Vendored stand-in for the subset of `proptest` the workspace tests use.
//!
//! Implements deterministic random generation for the combinators that
//! appear in the test suites — regex-literal string strategies, numeric
//! ranges, tuples, `Just`, `any::<bool>()`, `prop_map`, `prop_recursive`,
//! `prop_oneof!`, and `prop::collection::{vec, btree_set}` — plus the
//! `proptest!` test harness macro. There is no shrinking: a failing case
//! reports the generated inputs verbatim (generation is seeded per test
//! name, so failures reproduce exactly under `cargo test`).

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic splitmix64 generator used by every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform size drawn from a half-open range.
    pub fn size_in(&mut self, range: &Range<usize>) -> usize {
        assert!(range.start < range.end, "empty size range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }
}

/// FNV-1a over the test name: stable seeds across runs and platforms.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------

/// A generator of test values. Mirrors `proptest::strategy::Strategy`
/// minus shrinking.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build recursive values: `f` receives a strategy for the next level
    /// down and returns the strategy for one level up; recursion bottoms
    /// out at `self` after `depth` levels. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility — sizing
    /// is governed by the collection ranges inside `f`.
    fn prop_recursive<F, R>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        R: Strategy<Value = Self::Value> + 'static,
    {
        let f = Arc::new(move |inner: BoxedStrategy<Self::Value>| f(inner).boxed());
        Recursive {
            core: Arc::new(RecursiveCore {
                leaf: self.boxed(),
                f,
            }),
            depth,
        }
    }

    /// Type-erase into a clonable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Clonable type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

struct RecursiveCore<T> {
    leaf: BoxedStrategy<T>,
    f: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

/// Strategy produced by [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    core: Arc<RecursiveCore<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            core: Arc::clone(&self.core),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Recursive<T> {
    fn generate_at(core: &Arc<RecursiveCore<T>>, rng: &mut TestRng, depth: u32) -> T {
        // Descend with probability 3/4 so shallow values are exercised too.
        if depth == 0 || rng.below(4) == 0 {
            return core.leaf.generate(rng);
        }
        let below = Recursive {
            core: Arc::clone(core),
            depth: depth - 1,
        };
        (core.f)(below.boxed()).generate(rng)
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        Self::generate_at(&self.core, rng, self.depth)
    }
}

/// Uniform choice among type-erased alternatives; built by `prop_oneof!`.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

// Numeric ranges are strategies.
macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() as f32 * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

// Tuples of strategies are strategies.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

// String literals are regex strategies.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

mod regex_gen {
    //! Generator for the regex-literal subset used as string strategies:
    //! sequences of literal characters (with `\` escapes) and character
    //! classes `[...]` (ranges, escapes, literal `-` in edge position),
    //! each optionally followed by `{n}` / `{m,n}`, `*`, `+`, or `?`.

    use super::TestRng;

    enum Atom {
        Lit(char),
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let span = piece.max - piece.min + 1;
            let reps = piece.min + rng.below(span as u64) as usize;
            for _ in 0..reps {
                match &piece.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
                            .sum();
                        let mut pick = rng.below(total.max(1));
                        for (a, b) in ranges {
                            let len = (*b as u64) - (*a as u64) + 1;
                            if pick < len {
                                out.push(char::from_u32(*a as u32 + pick as u32).unwrap());
                                break;
                            }
                            pick -= len;
                        }
                    }
                }
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let (ranges, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("regex strategy {pattern:?}: dangling escape"));
                    i += 1;
                    Atom::Lit(unescape(c))
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            let (min, max, next) = parse_quantifier(&chars, i, pattern);
            i = next;
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
        let mut ranges = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = *chars
                .get(i)
                .unwrap_or_else(|| panic!("regex strategy {pattern:?}: unterminated class"));
            match c {
                ']' => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    return (ranges, i + 1);
                }
                '-' if pending.is_some() && chars.get(i + 1).is_some_and(|&n| n != ']') => {
                    let lo = pending.take().unwrap();
                    i += 1;
                    let mut hi = chars[i];
                    if hi == '\\' {
                        i += 1;
                        hi = unescape(chars[i]);
                    }
                    assert!(lo <= hi, "regex strategy {pattern:?}: inverted range");
                    ranges.push((lo, hi));
                    i += 1;
                }
                '\\' => {
                    if let Some(p) = pending.replace(unescape(chars[i + 1])) {
                        ranges.push((p, p));
                    }
                    i += 2;
                }
                other => {
                    if let Some(p) = pending.replace(other) {
                        ranges.push((p, p));
                    }
                    i += 1;
                }
            }
        }
    }

    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("regex strategy {pattern:?}: unterminated {{}}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n} lower bound"),
                        hi.trim().parse().expect("bad {m,n} upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad {n} count");
                        (n, n)
                    }
                };
                (min, max, close + 1)
            }
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            Some('?') => (0, 1, i + 1),
            _ => (1, 1, i),
        }
    }
}

// ---------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------

/// Mirrors `proptest::arbitrary::Arbitrary` for the types the tests use.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.below(2) == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for usize {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

pub mod collection {
    use super::{BTreeSet, Range, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.size_in(&self.size);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.size_in(&self.size);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; cap the retries like proptest does.
            for _ in 0..target.saturating_mul(16).max(16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// `prop::collection::btree_set(element, size_range)`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }
}

// ---------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------

/// Mirrors `proptest::test_runner::Config` (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy, Union};
}

pub mod test_runner {
    pub use super::ProptestConfig as Config;
}

/// `prop::…` namespace as re-exported by the prelude.
pub mod prop {
    pub use super::collection;
    pub use super::strategy;
}

pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice between strategies producing the same value type.
/// Weighted arms (`w => strat`) are not supported by this stand-in.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assertion macros: plain panics (no shrinking machinery to unwind into).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test-harness macro. Each contained function runs `cases` times
/// with inputs drawn from its strategies; on panic the generated inputs
/// are printed and the panic is propagated.
#[macro_export]
macro_rules! proptest {
    (
        @cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::seeded($crate::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = {
                        $(let $arg = ::std::clone::Clone::clone(&$arg);)+
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                            move || { $body }
                        ))
                    };
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {}/{} failed in {}:",
                            case + 1, config.cases, stringify!($name)
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{seed_for, TestRng};

    #[test]
    fn regex_class_with_quantifier() {
        let mut rng = TestRng::seeded(seed_for("regex"));
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "bad len: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn regex_concatenated_classes() {
        let mut rng = TestRng::seeded(seed_for("concat"));
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zA-Z][a-zA-Z0-9_.-]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
        }
    }

    #[test]
    fn regex_escaped_class_members() {
        let mut rng = TestRng::seeded(seed_for("escape"));
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z*?\\[\\]]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || "*?[]".contains(c)));
        }
    }

    #[test]
    fn oneof_and_ranges_cover_all_arms() {
        let strat = prop_oneof![Just(0i64), 1i64..10, Just(99i64)];
        let mut rng = TestRng::seeded(seed_for("oneof"));
        let mut seen_zero = false;
        let mut seen_mid = false;
        let mut seen_99 = false;
        for _ in 0..300 {
            match Strategy::generate(&strat, &mut rng) {
                0 => seen_zero = true,
                v if (1..10).contains(&v) => seen_mid = true,
                99 => seen_99 = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen_zero && seen_mid && seen_99);
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(T::Node)
        });
        let mut rng = TestRng::seeded(seed_for("recursive"));
        for _ in 0..100 {
            assert!(depth(&Strategy::generate(&strat, &mut rng)) <= 4);
        }
    }

    #[test]
    fn btree_set_respects_size_and_uniqueness() {
        let strat = prop::collection::btree_set("[a-z][a-z0-9]{0,6}", 1..6);
        let mut rng = TestRng::seeded(seed_for("btree"));
        for _ in 0..100 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(!s.is_empty() && s.len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The harness itself: generated tuples land in their ranges.
        #[test]
        fn harness_smoke(pair in (0i64..10, "[xy]"), flag in any::<bool>()) {
            prop_assert!((0..10).contains(&pair.0));
            prop_assert!(pair.1 == "x" || pair.1 == "y");
            prop_assert_eq!(u64::from(flag), if flag { 1 } else { 0 });
        }
    }
}
