//! Vendored stand-in for the subset of `criterion` the bench targets use:
//! `black_box`, `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `Bencher::iter`, `BenchmarkId::from_parameter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! It is a real micro-benchmark harness — wall-clock timing with warmup
//! and a fixed sample budget, reporting mean ns/iter — just without
//! criterion's statistics and plotting. Bench targets therefore compile
//! under `cargo bench --no-run` and produce readable numbers under
//! `cargo bench`. Like real criterion, the first positional CLI argument
//! is a substring filter on benchmark names
//! (`cargo bench --bench platform -- executor_engine` runs only that
//! group).
//!
//! Setting `CRITERION_JSON=<path>` additionally writes every completed
//! measurement as a JSON array of `{"name", "mean_ns", "iters"}` records
//! — the machine-readable trajectory file CI archives
//! (`BENCH_pipeline.json`). The file is rewritten after each measurement,
//! so it is valid JSON even if the bench process is interrupted.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The substring filter from the command line (first non-flag argument),
/// mirroring criterion's `cargo bench -- <filter>` behavior.
fn name_filter() -> Option<&'static str> {
    static FILTER: OnceLock<Option<String>> = OnceLock::new();
    FILTER
        .get_or_init(|| std::env::args().skip(1).find(|a| !a.starts_with('-')))
        .as_deref()
}

fn filtered_out(name: &str) -> bool {
    name_filter().is_some_and(|f| !name.contains(f))
}

/// Opaque value barrier, same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-target timing loop handed to bench closures.
pub struct Bencher {
    sample_size: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Run `f` repeatedly: one warmup pass, then `sample_size` timed
    /// iterations; records the mean.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(f());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / self.sample_size as f64;
    }
}

/// Path of the machine-readable report, from `CRITERION_JSON`.
fn json_path() -> Option<&'static str> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| {
        std::env::var("CRITERION_JSON")
            .ok()
            .filter(|p| !p.is_empty())
    })
    .as_deref()
}

/// Measurements completed so far in this bench process.
fn json_records() -> &'static Mutex<Vec<(String, f64, u64)>> {
    static RECORDS: OnceLock<Mutex<Vec<(String, f64, u64)>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Minimal JSON string escaping (bench names are plain identifiers, but
/// stay correct for arbitrary input).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Appends one measurement and rewrites the whole report file so the
/// on-disk artifact is always a complete, valid JSON array.
fn write_json(name: &str, mean_ns: f64, iters: u64) {
    let Some(path) = json_path() else { return };
    let mut records = json_records().lock().expect("bench records poisoned");
    records.push((name.to_owned(), mean_ns, iters));
    let body: Vec<String> = records
        .iter()
        .map(|(n, ns, it)| {
            format!(
                "  {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}",
                json_escape(n),
                ns,
                it
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", body.join(",\n"));
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("criterion: cannot write {path}: {e}");
    }
}

fn report(name: &str, mean_ns: f64) {
    let human = if mean_ns >= 1e9 {
        format!("{:.3} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} µs", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.1} ns")
    };
    println!("bench: {name:<48} {human}/iter");
}

fn run_target(name: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    if filtered_out(name) {
        return;
    }
    let mut b = Bencher {
        sample_size,
        mean_ns: f64::NAN,
    };
    f(&mut b);
    report(name, b.mean_ns);
    write_json(name, b.mean_ns, sample_size);
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Top-level driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_target(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size,
        }
    }
}

/// Named group with its own sample size, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_target(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        let mut g = |b: &mut Bencher| f(b, input);
        run_target(&name, self.sample_size, &mut g);
        self
    }

    pub fn finish(self) {}
}

/// Declares a bench group function invoking each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_escape("plain/name_1"), "plain/name_1");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }

    #[test]
    fn group_api_matches_usage() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(4usize), &4usize, |b, &w| {
            b.iter(|| w * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
