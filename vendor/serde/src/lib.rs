//! Vendored stand-in for `serde` so the workspace builds offline.
//!
//! Exposes the `Serialize` / `Deserialize` names (trait markers plus the
//! no-op derives from the sibling `serde_derive` stub). Workspace crates
//! only annotate types today; no serialization is performed. Replacing
//! this stub with the real crates.io `serde` is a manifest-only change.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
