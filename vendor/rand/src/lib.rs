//! Vendored stand-in for the subset of `rand` 0.8 the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges,
//! and `Rng::gen_bool`. Deterministic by construction (the workspace only
//! ever seeds explicitly), implemented as splitmix64 — statistically fine
//! for simulation workloads, not cryptographic.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Mirrors `rand::SeedableRng`, reduced to the one constructor we use.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range`, mirroring the
/// `gen_range(low..high)` calls in the workspace.
pub trait SampleUniform: Copy {
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self;
}

/// Object-safe raw generator, mirroring `rand::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Mirrors `rand::Rng`, reduced to `gen_range` / `gen_bool`.
pub trait Rng: RngCore {
    /// Uniform sample in `[range.start, range.end)`. Panics when empty,
    /// like the real crate.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(range, self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1)
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let v = range.start + unit_f64(rng.next_u64()) * (range.end - range.start);
        // Float rounding can land exactly on `end`; the contract is half-open.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let v = range.start + unit_f64(rng.next_u64()) as f32 * (range.end - range.start);
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
