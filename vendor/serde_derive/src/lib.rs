//! Vendored stand-in for `serde_derive` so the workspace builds offline.
//!
//! The derives are accepted and expand to nothing: none of the workspace
//! crates perform actual serialization yet, they only annotate types so the
//! schema is ready when a real `serde` is swapped in. Swapping is a
//! one-line change in the workspace manifest.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
