//! Cross-crate integration tests: the full benchmark pipeline from
//! dataset generation to unit-test verdicts, spanning every workspace
//! crate through the `cloudeval` facade.

use std::sync::Arc;

use cloudeval::core::harness::{evaluate, pass_count, EvalOptions};
use cloudeval::dataset::{Dataset, Variant};
use cloudeval::llm::{extract_yaml, GenParams, LanguageModel, ModelProfile, SimulatedModel};

fn model(name: &str, dataset: &Arc<Dataset>) -> SimulatedModel {
    SimulatedModel::new(
        ModelProfile::by_name(name).expect("known model"),
        Arc::clone(dataset),
    )
}

#[test]
fn perfect_answers_pass_everything() {
    // Feeding each problem its own reference through the scoring + unit
    // test stack must yield perfect scores: the ground-truth invariant
    // that anchors every other measurement.
    let dataset = Dataset::generate();
    for problem in dataset.problems().iter().step_by(7) {
        let answer = problem.clean_reference();
        let scores = cloudeval::score::score_pair(&problem.labeled_reference, &answer);
        assert_eq!(scores.kv_wildcard, 1.0, "{}", problem.id);
        assert_eq!(scores.kv_exact, 1.0, "{}", problem.id);
        let outcome = cloudeval::shell::run_unit_test(&problem.unit_test, &answer).unwrap();
        assert!(
            outcome.combined.contains("unit_test_passed"),
            "{}:\n{}",
            problem.id,
            outcome.combined
        );
    }
}

#[test]
fn pipeline_matches_paper_pass_counts_on_slice() {
    // On a 1-in-3 slice, pass counts should scale with the paper's
    // Table 5 targets (difficulty-stratified systematic draws keep slices
    // representative).
    let dataset = Arc::new(Dataset::generate());
    let gpt4 = model("gpt-4", &dataset);
    let records = evaluate(
        &gpt4,
        &dataset,
        &EvalOptions {
            stride: 3,
            workers: 8,
            ..EvalOptions::default()
        },
    );
    let passes = pass_count(&records) as f64;
    let expected = 179.0 / 3.0;
    assert!(
        (passes - expected).abs() < expected * 0.35,
        "gpt-4 slice passes {passes} vs scaled target {expected:.0}"
    );
}

#[test]
fn proprietary_open_gap_is_reproduced() {
    // Observation 1 of the paper: proprietary models lead by a large gap,
    // larger than on HumanEval-style benchmarks.
    let dataset = Arc::new(Dataset::generate());
    let options = EvalOptions {
        stride: 5,
        workers: 8,
        ..EvalOptions::default()
    };
    let gpt4 = pass_count(&evaluate(&model("gpt-4", &dataset), &dataset, &options));
    let best_open = pass_count(&evaluate(
        &model("llama-2-70b-chat", &dataset),
        &dataset,
        &options,
    ));
    assert!(
        gpt4 as f64 >= best_open as f64 * 3.0,
        "gap too small: gpt-4 {gpt4} vs llama-2-70b {best_open}"
    );
}

#[test]
fn code_models_underperform_general_models() {
    // Observation 2: dedicated code models do poorly here.
    let dataset = Arc::new(Dataset::generate());
    let options = EvalOptions {
        stride: 5,
        workers: 8,
        ..EvalOptions::default()
    };
    let wizard = pass_count(&evaluate(
        &model("wizardcoder-34b-v1.0", &dataset),
        &dataset,
        &options,
    ));
    let llama13 = pass_count(&evaluate(
        &model("llama-2-13b-chat", &dataset),
        &dataset,
        &options,
    ));
    // Half the parameters, comparable-or-better unit-test score.
    assert!(
        llama13 + 3 >= wizard,
        "llama-2-13b ({llama13}) should be in wizardcoder-34b's range ({wizard})"
    );
}

#[test]
fn translated_collapse_for_code_models() {
    // Table 5: wizardcoder-34b drops from 24 to 2 on translated questions.
    let dataset = Arc::new(Dataset::generate());
    let wizard = model("wizardcoder-34b-v1.0", &dataset);
    let opts = |v| EvalOptions {
        variants: vec![v],
        stride: 2,
        workers: 8,
        ..EvalOptions::default()
    };
    let original = pass_count(&evaluate(&wizard, &dataset, &opts(Variant::Original)));
    let translated = pass_count(&evaluate(&wizard, &dataset, &opts(Variant::Translated)));
    assert!(
        translated * 3 < original.max(1),
        "expected translation collapse: {original} -> {translated}"
    );
}

#[test]
fn every_model_generates_parseable_prompt_responses() {
    // The query interface is a total function: every model must answer
    // every prompt with text (possibly garbage, never a panic).
    let dataset = Arc::new(Dataset::generate());
    let problem = &dataset.problems()[0];
    let prompt =
        cloudeval::dataset::fewshot::build_prompt(&problem.prompt_body(Variant::Original), 2);
    for profile in cloudeval::llm::all_models() {
        let m = SimulatedModel::new(profile, Arc::clone(&dataset));
        let raw = m.generate(&prompt, &GenParams::default());
        let _clean = extract_yaml(&raw);
    }
}

#[test]
fn full_pipeline_through_executor_is_deterministic() {
    let dataset = Arc::new(Dataset::generate());
    let gpt35 = model("gpt-3.5", &dataset);
    let options = EvalOptions {
        stride: 20,
        workers: 4,
        ..EvalOptions::default()
    };
    let a = evaluate(&gpt35, &dataset, &options);
    let b = evaluate(&gpt35, &dataset, &options);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.extracted, y.extracted, "{}", x.problem_id);
        assert_eq!(x.scores.unit_test, y.scores.unit_test, "{}", x.problem_id);
    }
}
