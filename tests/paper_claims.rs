//! Tests pinning the paper's headline quantitative claims to this
//! reproduction: dataset statistics, platform scaling, cost figures, and
//! the exact Table 5 calibration.

use std::sync::Arc;

use cloudeval::dataset::{Dataset, Variant};
use cloudeval::llm::{ModelProfile, SimulatedModel};

#[test]
fn dataset_is_337_times_3() {
    let ds = Dataset::generate();
    assert_eq!(ds.len(), 337);
    assert_eq!(ds.expanded().len(), 1011);
}

#[test]
fn solution_length_dwarfs_humaneval() {
    // §2.3: average solution lines 28.35 ≈ 4x HumanEval's 6.3.
    let ds = Dataset::generate();
    let avg: f64 = ds
        .problems()
        .iter()
        .map(|p| p.reference_lines() as f64)
        .sum::<f64>()
        / ds.len() as f64;
    assert!(
        avg > 6.3 * 2.5,
        "avg solution lines {avg:.1} not >> HumanEval's 6.3"
    );
}

#[test]
fn expected_pass_mass_equals_table5_for_every_cell() {
    // The calibrated models' expected pass counts equal the paper's
    // Table 5 numbers exactly.
    let ds = Arc::new(Dataset::generate());
    let expected: &[(&str, [Option<usize>; 3])] = &[
        ("gpt-4", [Some(179), Some(164), Some(178)]),
        ("gpt-3.5", [Some(142), Some(143), Some(132)]),
        ("palm-2-bison", [Some(120), Some(97), None]),
        ("llama-2-70b-chat", [Some(30), Some(24), Some(32)]),
        ("llama-2-13b-chat", [Some(26), Some(17), Some(25)]),
        ("wizardcoder-34b-v1.0", [Some(24), Some(31), Some(2)]),
        ("llama-2-7b-chat", [Some(13), Some(9), Some(5)]),
        ("wizardcoder-15b-v1.0", [Some(12), Some(11), Some(3)]),
        ("llama-7b", [Some(12), Some(7), Some(4)]),
        ("llama-13b-lora", [Some(8), Some(9), Some(4)]),
        ("codellama-7b-instruct", [Some(5), Some(6), Some(4)]),
        ("codellama-13b-instruct", [Some(5), Some(2), Some(5)]),
    ];
    for (name, targets) in expected {
        let m = SimulatedModel::new(ModelProfile::by_name(name).unwrap(), Arc::clone(&ds));
        for (variant, target) in Variant::ALL.into_iter().zip(targets) {
            let mass: f64 = (0..ds.len())
                .map(|i| m.pass_probability(i, variant, 0))
                .sum();
            match target {
                Some(t) => assert!(
                    (mass - *t as f64).abs() < 0.5,
                    "{name} {variant:?}: {mass:.2} != {t}"
                ),
                None => assert_eq!(mass, 0.0, "{name} {variant:?}"),
            }
        }
    }
}

#[test]
fn figure5_headline_numbers() {
    // ~10 hours on one machine, under an hour on 64 workers with the
    // shared image cache, with a 13x+ overall speedup.
    let rows = cloudeval::cluster::figure5(cloudeval::cluster::des::DEFAULT_OVERHEAD_S);
    let (w1, t1_no, _) = rows[0];
    let (w64, t64_no, t64_yes) = rows[3];
    assert_eq!((w1, w64), (1, 64));
    assert!((7.0..14.0).contains(&t1_no), "single machine: {t1_no:.1}h");
    assert!(t64_yes < 1.0, "64 workers cached: {t64_yes:.2}h");
    assert!(t1_no / t64_yes > 13.0);
    assert!(t64_no > t64_yes, "cache must help at 64 workers");
}

#[test]
fn cheapest_run_is_about_a_dollar_thirty() {
    // Table 3: GPT-3.5 + one spot instance ≈ $1.31 per full run.
    let (_, min_total, max_total) = cloudeval::cluster::table3(10.3, 0.50);
    assert!((1.0..1.7).contains(&min_total), "min ${min_total:.2}");
    assert!((7.5..9.5).contains(&max_total), "max ${max_total:.2}");
}

#[test]
fn survey_motivates_yaml_focus() {
    // Appendix A: 90 of the top-100 CNCF repos have 10+ YAML files.
    assert_eq!(cloudeval::core::survey::repos_with_at_least(10), 90);
}

#[test]
fn augmentation_shrinks_questions() {
    // Table 1: simplified questions are meaningfully shorter.
    let ds = Dataset::generate();
    let stats = cloudeval::dataset::stats::variant_stats(&ds);
    assert_eq!(stats[0].count, 337);
    let reduction = 1.0 - stats[1].avg_words / stats[0].avg_words;
    assert!(reduction > 0.10, "only {:.1}% shorter", reduction * 100.0);
    assert!(stats[1].avg_tokens < stats[0].avg_tokens);
}

#[test]
fn query_module_parallel_speedup_is_two_orders() {
    // §3.1: parallel querying "can significantly increase the speed by
    // two orders of magnitude" (128 raylets).
    let ds = Arc::new(Dataset::generate());
    let m = SimulatedModel::new(ModelProfile::by_name("gpt-4").unwrap(), Arc::clone(&ds));
    let prompts: Vec<String> = ds
        .problems()
        .iter()
        .take(256)
        .map(|p| cloudeval::dataset::fewshot::build_prompt(&p.prompt_body(Variant::Original), 0))
        .collect();
    let report = cloudeval::llm::query_batch(
        &m,
        &prompts,
        &cloudeval::llm::GenParams::default(),
        &cloudeval::llm::QueryConfig {
            parallelism: 128,
            ..Default::default()
        },
    );
    assert!(report.speedup() > 100.0, "speedup {:.0}x", report.speedup());
}
