//! Facade smoke test: every `cloudeval::*` re-export is exercised with at
//! least one call, so a broken re-export (or a crate silently dropped
//! from the workspace wiring) fails here instead of in a downstream user.

use cloudeval::{boost, cluster, core, dataset, envoy, exec, kube, llm, score, serve, shell, yaml};

#[test]
fn yaml_reexport_round_trips() {
    let value = yaml::parse_one("a: 1\nb: x\n").unwrap().to_value();
    let emitted = yaml::emit(&value);
    assert_eq!(yaml::parse_one(&emitted).unwrap().to_value(), value);
}

#[test]
fn dataset_reexport_generates_problems() {
    let ds = dataset::Dataset::generate();
    assert!(!ds.problems().is_empty());
    assert!(ds.get("pod-000").is_some());
}

#[test]
fn score_reexport_scores_a_pair() {
    let s = score::score_pair("a: 1\n", "a: 1\n");
    assert_eq!(s.exact_match, 1.0);
    assert!((s.bleu - 1.0).abs() < 1e-9);
}

#[test]
fn document_model_reexports_share_one_parse() {
    // The parse-once pipeline through the facade: one PreparedDoc for
    // the candidate, one PreparedRef for the reference, scored and
    // executed without any layer re-parsing.
    let reference = "kind: Pod\nmetadata:\n  name: web # *\n";
    let candidate = yaml::PreparedDoc::shared("kind: Pod\nmetadata:\n  name: anything\n");
    let prepared = score::RefCache::new().prepare(reference);
    let s = score::score_pair_prepared(&prepared, &candidate);
    assert_eq!(s.kv_wildcard, 1.0);
    assert_eq!(s, score::score_pair_text(reference, candidate.text()));
    assert_eq!(
        candidate.content_hash(),
        exec::content_hash(candidate.text())
    );
    let job = cluster::UnitTestJob::prepared("smoke", "echo unit_test_passed", candidate);
    assert!(cluster::run_jobs(&[job], 1).results[0].passed);
}

#[test]
fn shell_reexport_runs_a_script() {
    let mut sandbox = shell::EmptySandbox;
    let mut sh = shell::Interp::new(&mut sandbox);
    let out = sh.run_script("echo $((6 * 7))").unwrap();
    assert_eq!(out.stdout.trim(), "42");
}

#[test]
fn kube_reexport_applies_a_manifest() {
    let mut c = kube::Cluster::new();
    let manifest = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: p\nspec:\n  containers:\n  - name: c\n    image: nginx\n";
    c.apply_manifest(manifest, "default").unwrap();
    assert_eq!(c.get("Pod", Some("default"), Some("p")).len(), 1);
}

#[test]
fn llm_reexport_extracts_yaml() {
    let wrapped = "Here you go:\n```yaml\na: 1\n```\nDone.";
    assert_eq!(llm::extract_yaml(wrapped).trim(), "a: 1");
}

#[test]
fn cluster_reexport_runs_jobs() {
    let report = cluster::run_jobs(&[], 2);
    assert!(report.results.is_empty());
    assert_eq!(report.workers, 2);
}

#[test]
fn streaming_reexports_compose_into_a_stage_graph() {
    use cloudeval::core::pipeline::{Pipeline, Stage};

    // llm::query_stream emits incrementally...
    struct Echo;
    impl llm::LanguageModel for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn generate(&self, prompt: &str, _params: &llm::GenParams) -> String {
            prompt.to_owned()
        }
    }
    let prompts: Vec<String> = (0..8).map(|i| format!("p{i}")).collect();
    let emitted = std::sync::Mutex::new(0usize);
    let stream = llm::query_stream(
        &Echo,
        &prompts,
        &llm::GenParams::default(),
        &llm::QueryConfig::default(),
        |_, _| *emitted.lock().unwrap() += 1,
    );
    assert_eq!(stream.prompts, 8);
    assert_eq!(*emitted.lock().unwrap(), 8);

    // ...the pipeline orders the stream deterministically...
    struct Len;
    impl Stage for Len {
        type In = String;
        type Out = usize;
        fn workers(&self) -> usize {
            2
        }
        fn process(&self, _index: usize, input: String) -> usize {
            input.len()
        }
    }
    let out = Pipeline::new(Len).run(vec!["a".into(), "bb".into(), "ccc".into()]);
    assert_eq!(out, vec![1, 2, 3]);

    // ...and the streaming executor drains a disconnected channel.
    let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, cluster::UnitTestJob)>(1);
    drop(tx);
    let stats = cluster::run_jobs_stream(rx, 2, &cluster::ScoreMemo::new(), |_, _| {});
    assert_eq!(stats.executed, 0);
}

#[test]
fn envoy_reexport_parses_sample_config() {
    let cfg = envoy::EnvoyConfig::parse(envoy::SAMPLE_CONFIG).unwrap();
    assert!(matches!(
        cfg.route(10000, "example.com", "/"),
        envoy::RouteOutcome::Cluster(_)
    ));
}

#[test]
fn boost_reexport_fits_a_classifier() {
    let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i % 2)]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
    let clf = boost::Classifier::fit(&xs, &ys, &boost::BoostParams::default());
    assert!(clf.predict(&[1.0]));
}

#[test]
fn core_reexport_reaches_the_harness_layer() {
    // pass@k curve accessors from the harness layer.
    let table = core::passk::PassAtK {
        model: "m".to_owned(),
        curve: vec![2, 3, 3],
    };
    assert_eq!(table.pass_at_1(), 2);
    assert_eq!(table.normalized().last().copied(), Some(1.5));
}

#[test]
fn exec_reexport_drives_the_substrate_trait() {
    use exec::Substrate;
    let outcome = exec::EnvoySubstrate::new()
        .execute(
            envoy::SAMPLE_CONFIG,
            "route 10000 example.com / => cluster service_backend",
        )
        .unwrap();
    assert!(outcome.passed);
    assert_ne!(exec::content_hash("a"), exec::content_hash("b"));
}

#[test]
fn serve_reexport_answers_one_evaluate_request() {
    let dataset = std::sync::Arc::new(dataset::Dataset::generate());
    let server = serve::spawn(
        "127.0.0.1:0",
        std::sync::Arc::clone(&dataset),
        serve::ServerConfig {
            workers: 2,
            ..serve::ServerConfig::default()
        },
    )
    .unwrap();
    let corpus = serve::loadgen::build_corpus(&dataset, 2);
    let report = serve::loadgen::run(
        server.addr(),
        &corpus,
        &serve::loadgen::LoadGenConfig {
            clients: 1,
            requests: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.outcomes.len(), 2);
    assert!(report.outcomes.iter().all(|o| o.status == 200));
    server.shutdown().unwrap();
}
