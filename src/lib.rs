//! # cloudeval
//!
//! Facade crate for the CloudEval-YAML reproduction workspace (MLSYS 2024,
//! arXiv:2401.06786): one `use cloudeval::...` away from the dataset, the
//! scoring metrics, the Kubernetes/Envoy simulators, the shell-based unit
//! test runner, the simulated models, the evaluation platform and the
//! benchmark orchestration.
//!
//! # Examples
//!
//! ```
//! use cloudeval::dataset::Dataset;
//!
//! let ds = Dataset::generate();
//! let problem = &ds.problems()[0];
//! let outcome =
//!     cloudeval::shell::run_unit_test(&problem.unit_test, &problem.clean_reference()).unwrap();
//! assert!(outcome.combined.contains("unit_test_passed"));
//! ```

#![forbid(unsafe_code)]

pub use cedataset as dataset;
pub use cescore as score;
pub use ceserve as serve;
pub use cloudeval_core as core;
pub use envoysim as envoy;
pub use evalcluster as cluster;
pub use gboost as boost;
pub use kubesim as kube;
pub use llmsim as llm;
pub use minishell as shell;
pub use substrate as exec;
pub use yamlkit as yaml;
